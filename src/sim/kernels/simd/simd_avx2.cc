/**
 * @file
 * AVX2 tier of the gate-kernel dispatch table. Compiled with
 * -mavx2 -ffp-contract=off; see dispatch.hh for the bit-exactness
 * contract and avx_util.hh for the complex-multiply building blocks.
 *
 * Geometry notes (a __m256d holds W = 2 complexes):
 *  - Pair kernels on target q >= 1 process two adjacent compact
 *    indices per vector: compact index h expands to contiguous i0
 *    runs of length 2^q, so after peeling to even h both lanes sit in
 *    the same run. Chunk bounds from the lane splitter are arbitrary,
 *    hence every body scalar-peels its head and tail with the exact
 *    std::complex arithmetic of the oracle (the TU's -ffp-contract=off
 *    keeps those peels un-fused).
 *  - q == 0 folds the *pair* into one vector instead: [a0, a1] is
 *    contiguous memory, the 2x2 matrix becomes per-lane constants and
 *    two 128-bit broadcasts. No alignment requirement, no peel.
 *  - Shapes a routine cannot lay out this way return false before
 *    touching memory and fall down the dispatch ladder.
 */

#include <cstdint>

#include "math/types.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/simd/avx_util.hh"
#include "sim/kernels/simd/dispatch.hh"
#include "sim/kernels/traversal.hh"

namespace qra {
namespace kernels {
namespace simd {
namespace {

bool
general1qAvx2(Complex *amps, std::uint64_t n, Qubit q, Complex m00,
              Complex m01, Complex m10, Complex m11,
              Traversal traversal)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q == 0) {
        // One vector = one (a0, a1) pair at amps[2h].
        const __m256d r0r = laneRe(m00, m10), r0i = laneIm(m00, m10);
        const __m256d r1r = laneRe(m01, m11), r1i = laneIm(m01, m11);
        forEachCompact(
            n >> 1, 2, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    const __m256d v = load2(amps + 2 * h);
                    const __m256d out = _mm256_add_pd(
                        cmulC(bcastLo(v), r0r, r0i),
                        cmulC(bcastHi(v), r1r, r1i));
                    store2(amps + 2 * h, out);
                }
            });
        return true;
    }
    const std::uint64_t low = bit - 1;
    const __m256d v00r = bcastRe(m00), v00i = bcastIm(m00);
    const __m256d v01r = bcastRe(m01), v01i = bcastIm(m01);
    const __m256d v10r = bcastRe(m10), v10i = bcastIm(m10);
    const __m256d v11r = bcastRe(m11), v11i = bcastIm(m11);
    forEachCompact(
        n >> 1, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & 1) != 0; ++h)
                scalarOne(h);
            for (; h + 2 <= end; h += 2) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const __m256d v0 = load2(amps + i0);
                const __m256d v1 = load2(amps + i0 + bit);
                store2(amps + i0,
                       _mm256_add_pd(cmulC(v0, v00r, v00i),
                                     cmulC(v1, v01r, v01i)));
                store2(amps + i0 + bit,
                       _mm256_add_pd(cmulC(v0, v10r, v10i),
                                     cmulC(v1, v11r, v11i)));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
diagonal1qAvx2(Complex *amps, std::uint64_t n, Qubit q, Complex d0,
               Complex d1)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q == 0) {
        // d alternates per complex: per-lane constants, no peel on
        // even boundaries only — peel odd heads.
        const __m256d dr = laneRe(d0, d1), di = laneIm(d0, d1);
        parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
            std::uint64_t i = begin;
            for (; i < end && (i & 1) != 0; ++i)
                amps[i] *= d1;
            for (; i + 2 <= end; i += 2)
                store2(amps + i, cmulC(load2(amps + i), dr, di));
            for (; i < end; ++i)
                amps[i] *= d0;
        });
        return true;
    }
    const __m256d d0r = bcastRe(d0), d0i = bcastIm(d0);
    const __m256d d1r = bcastRe(d1), d1i = bcastIm(d1);
    parallelFor(n, [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t i = begin;
        for (; i < end && (i & 1) != 0; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
        for (; i + 2 <= end; i += 2) {
            // i even and bit >= 2: both lanes share one diagonal.
            const bool hi = (i & bit) != 0;
            store2(amps + i, cmulC(load2(amps + i), hi ? d1r : d0r,
                                   hi ? d1i : d0i));
        }
        for (; i < end; ++i)
            amps[i] *= (i & bit) ? d1 : d0;
    });
    return true;
}

bool
antidiagonal1qAvx2(Complex *amps, std::uint64_t n, Qubit q, Complex a01,
                   Complex a10, Traversal traversal)
{
    const std::uint64_t bit = std::uint64_t{1} << q;
    if (q == 0) {
        const __m256d mr = laneRe(a01, a10), mi = laneIm(a01, a10);
        forEachCompact(
            n >> 1, 2, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    const __m256d v = load2(amps + 2 * h);
                    store2(amps + 2 * h,
                           cmulC(swapLanes(v), mr, mi));
                }
            });
        return true;
    }
    const std::uint64_t low = bit - 1;
    const __m256d m01r = bcastRe(a01), m01i = bcastIm(a01);
    const __m256d m10r = bcastRe(a10), m10i = bcastIm(a10);
    forEachCompact(
        n >> 1, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const std::uint64_t i1 = i0 | bit;
                const Complex a0 = amps[i0];
                amps[i0] = a01 * amps[i1];
                amps[i1] = a10 * a0;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & 1) != 0; ++h)
                scalarOne(h);
            for (; h + 2 <= end; h += 2) {
                const std::uint64_t i0 = ((h & ~low) << 1) | (h & low);
                const __m256d v0 = load2(amps + i0);
                const __m256d v1 = load2(amps + i0 + bit);
                store2(amps + i0, cmulC(v1, m01r, m01i));
                store2(amps + i0 + bit, cmulC(v0, m10r, m10i));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
phaseOnMaskAvx2(Complex *amps, std::uint64_t n, std::uint64_t mask,
                Complex phase)
{
    const __m256d pr = bcastRe(phase), pi = bcastIm(phase);
    if (mask == 1) {
        // Touch the odd complex of each pair; blend keeps the even
        // one's bits (multiplying by 1+0i could flip a -0.0).
        parallelFor(n >> 1,
                    [=](std::uint64_t begin, std::uint64_t end) {
                        for (std::uint64_t h = begin; h < end; ++h) {
                            const __m256d v = load2(amps + 2 * h);
                            const __m256d prod = cmulC(v, pr, pi);
                            store2(amps + 2 * h,
                                   _mm256_blend_pd(v, prod, 0b1100));
                        }
                    });
        return true;
    }
    if ((mask & 1) != 0)
        return false; // multi-bit mask through bit 0: scalar ladder
    std::uint64_t bits[64];
    std::size_t k = 0;
    for (std::uint64_t rest = mask; rest != 0; rest &= rest - 1)
        bits[k++] = rest & ~(rest - 1);
    const std::uint64_t *bits_data = bits;
    parallelFor(n >> k, [=](std::uint64_t begin, std::uint64_t end) {
        std::uint64_t h = begin;
        for (; h < end && (h & 1) != 0; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
        for (; h + 2 <= end; h += 2) {
            // Lowest mask bit >= 2: h, h+1 expand contiguously.
            Complex *p = amps + (expandIndex(h, bits_data, k) | mask);
            store2(p, cmulC(load2(p), pr, pi));
        }
        for (; h < end; ++h)
            amps[expandIndex(h, bits_data, k) | mask] *= phase;
    });
    return true;
}

bool
controlled1qAvx2(Complex *amps, std::uint64_t n, Qubit control,
                 Qubit target, Complex m00, Complex m01, Complex m10,
                 Complex m11, Traversal traversal)
{
    const std::uint64_t cbit = std::uint64_t{1} << control;
    const std::uint64_t tbit = std::uint64_t{1} << target;
    std::uint64_t bits[2] = {cbit < tbit ? cbit : tbit,
                             cbit < tbit ? tbit : cbit};
    if (target == 0 && control >= 1) {
        // (a0, a1) is the contiguous pair at i0 = base | cbit: the
        // q == 0 broadcast layout, offset into the control subspace.
        const __m256d r0r = laneRe(m00, m10), r0i = laneIm(m00, m10);
        const __m256d r1r = laneRe(m01, m11), r1i = laneIm(m01, m11);
        forEachCompact(
            n >> 2, 2, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                for (std::uint64_t h = begin; h < end; ++h) {
                    Complex *p =
                        amps + (expandIndex(h, bits, 2) | cbit);
                    const __m256d v = load2(p);
                    store2(p, _mm256_add_pd(
                                  cmulC(bcastLo(v), r0r, r0i),
                                  cmulC(bcastHi(v), r1r, r1i)));
                }
            });
        return true;
    }
    if (control == 0 || target == 0)
        return false; // control on bit 0: pairs not contiguous
    const __m256d v00r = bcastRe(m00), v00i = bcastIm(m00);
    const __m256d v01r = bcastRe(m01), v01i = bcastIm(m01);
    const __m256d v10r = bcastRe(m10), v10i = bcastIm(m10);
    const __m256d v11r = bcastRe(m11), v11i = bcastIm(m11);
    forEachCompact(
        n >> 2, 2, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            const auto scalarOne = [=](std::uint64_t h) {
                const std::uint64_t i0 =
                    expandIndex(h, bits, 2) | cbit;
                const std::uint64_t i1 = i0 | tbit;
                const Complex a0 = amps[i0];
                const Complex a1 = amps[i1];
                amps[i0] = m00 * a0 + m01 * a1;
                amps[i1] = m10 * a0 + m11 * a1;
            };
            std::uint64_t h = begin;
            for (; h < end && (h & 1) != 0; ++h)
                scalarOne(h);
            for (; h + 2 <= end; h += 2) {
                const std::uint64_t i0 =
                    expandIndex(h, bits, 2) | cbit;
                const __m256d v0 = load2(amps + i0);
                const __m256d v1 = load2(amps + i0 + tbit);
                store2(amps + i0,
                       _mm256_add_pd(cmulC(v0, v00r, v00i),
                                     cmulC(v1, v01r, v01i)));
                store2(amps + i0 + tbit,
                       _mm256_add_pd(cmulC(v0, v10r, v10i),
                                     cmulC(v1, v11r, v11i)));
            }
            for (; h < end; ++h)
                scalarOne(h);
        });
    return true;
}

bool
general2qAvx2(Complex *amps, std::uint64_t n, Qubit q0, Qubit q1,
              const Complex *m, Traversal traversal)
{
    const std::uint64_t b0 = std::uint64_t{1} << q0;
    const std::uint64_t b1 = std::uint64_t{1} << q1;
    std::uint64_t bits[2] = {b0 < b1 ? b0 : b1, b0 < b1 ? b1 : b0};
    if (q0 >= 1 && q1 >= 1) {
        // Two adjacent groups per iteration: four two-complex loads
        // at base, base|b0, base|b1, base|b0|b1.
        __m256d cr[16], ci[16];
        for (int e = 0; e < 16; ++e) {
            cr[e] = bcastRe(m[e]);
            ci[e] = bcastIm(m[e]);
        }
        forEachCompact(
            n >> 2, 4, traversal,
            [=](std::uint64_t begin, std::uint64_t end) {
                const auto scalarOne = [=](std::uint64_t h) {
                    const std::uint64_t base =
                        expandIndex(h, bits, 2);
                    const std::uint64_t i1 = base | b0;
                    const std::uint64_t i2 = base | b1;
                    const std::uint64_t i3 = base | b0 | b1;
                    const Complex a0 = amps[base];
                    const Complex a1 = amps[i1];
                    const Complex a2 = amps[i2];
                    const Complex a3 = amps[i3];
                    amps[base] = m[0] * a0 + m[1] * a1 + m[2] * a2 +
                                 m[3] * a3;
                    amps[i1] = m[4] * a0 + m[5] * a1 + m[6] * a2 +
                               m[7] * a3;
                    amps[i2] = m[8] * a0 + m[9] * a1 + m[10] * a2 +
                               m[11] * a3;
                    amps[i3] = m[12] * a0 + m[13] * a1 + m[14] * a2 +
                               m[15] * a3;
                };
                std::uint64_t h = begin;
                for (; h < end && (h & 1) != 0; ++h)
                    scalarOne(h);
                for (; h + 2 <= end; h += 2) {
                    const std::uint64_t base =
                        expandIndex(h, bits, 2);
                    const __m256d a0 = load2(amps + base);
                    const __m256d a1 = load2(amps + (base | b0));
                    const __m256d a2 = load2(amps + (base | b1));
                    const __m256d a3 =
                        load2(amps + (base | b0 | b1));
                    for (int r = 0; r < 4; ++r) {
                        const int e = 4 * r;
                        __m256d acc = _mm256_add_pd(
                            cmulC(a0, cr[e], ci[e]),
                            cmulC(a1, cr[e + 1], ci[e + 1]));
                        acc = _mm256_add_pd(
                            acc, cmulC(a2, cr[e + 2], ci[e + 2]));
                        acc = _mm256_add_pd(
                            acc, cmulC(a3, cr[e + 3], ci[e + 3]));
                        const std::uint64_t off =
                            ((r & 1) ? b0 : 0) | ((r & 2) ? b1 : 0);
                        store2(amps + (base | off), acc);
                    }
                }
                for (; h < end; ++h)
                    scalarOne(h);
            });
        return true;
    }
    // One operand is qubit 0: each group is two contiguous pairs at
    // base and base|bhi; one group per iteration, no alignment. Mem
    // slot s (pair position) maps to matrix-local index l[s]: the
    // identity when q0 == 0, the two-bit swap when q1 == 0 (both are
    // involutions, so l also maps local columns to mem slots).
    const std::uint64_t bhi = bits[1];
    const int l[4] = {0, q0 == 0 ? 1 : 2, q0 == 0 ? 2 : 1, 3};
    __m256d loR[4], loI[4], hiR[4], hiI[4];
    for (int c = 0; c < 4; ++c) {
        loR[c] = laneRe(m[l[0] * 4 + c], m[l[1] * 4 + c]);
        loI[c] = laneIm(m[l[0] * 4 + c], m[l[1] * 4 + c]);
        hiR[c] = laneRe(m[l[2] * 4 + c], m[l[3] * 4 + c]);
        hiI[c] = laneIm(m[l[2] * 4 + c], m[l[3] * 4 + c]);
    }
    forEachCompact(
        n >> 2, 4, traversal,
        [=](std::uint64_t begin, std::uint64_t end) {
            for (std::uint64_t h = begin; h < end; ++h) {
                const std::uint64_t base = expandIndex(h, bits, 2);
                const __m256d vlo = load2(amps + base);
                const __m256d vhi = load2(amps + base + bhi);
                // Column c lives at mem slot l[c].
                __m256d col[4];
                for (int c = 0; c < 4; ++c) {
                    const int s = l[c];
                    const __m256d src = s < 2 ? vlo : vhi;
                    col[c] = (s & 1) ? bcastHi(src) : bcastLo(src);
                }
                __m256d rlo = _mm256_add_pd(
                    cmulC(col[0], loR[0], loI[0]),
                    cmulC(col[1], loR[1], loI[1]));
                rlo = _mm256_add_pd(rlo,
                                    cmulC(col[2], loR[2], loI[2]));
                rlo = _mm256_add_pd(rlo,
                                    cmulC(col[3], loR[3], loI[3]));
                __m256d rhi = _mm256_add_pd(
                    cmulC(col[0], hiR[0], hiI[0]),
                    cmulC(col[1], hiR[1], hiI[1]));
                rhi = _mm256_add_pd(rhi,
                                    cmulC(col[2], hiR[2], hiI[2]));
                rhi = _mm256_add_pd(rhi,
                                    cmulC(col[3], hiR[3], hiI[3]));
                store2(amps + base, rlo);
                store2(amps + base + bhi, rhi);
            }
        });
    return true;
}

// ---- reductions ------------------------------------------------------
//
// Lane contract (dispatch.hh): slot 2*(h&3) holds re^2 partials, slot
// 2*(h&3)+1 holds im^2 partials; acc_lo covers slots 0..3 (compact
// indices h with h&3 in {0,1}), acc_hi slots 4..7. Block starts are
// 4-aligned, so the vector accumulators map exactly onto the slots
// and the caller's left-to-right fold is tier-independent.

bool
normSqLanesAvx2(const Complex *amps, std::uint64_t begin,
                std::uint64_t end, const std::uint64_t *bits,
                std::size_t k, std::uint64_t match, double *lanes)
{
    if (k != 0 && bits[0] < 4)
        return false; // group of 4 compact indices not contiguous
    if (begin == end)
        return true; // geometry probe
    __m256d acc_lo = _mm256_loadu_pd(lanes);
    __m256d acc_hi = _mm256_loadu_pd(lanes + 4);
    std::uint64_t h = begin; // 4-aligned per the dispatch contract
    for (; h + 4 <= end; h += 4) {
        const std::uint64_t i0 = expandIndex(h, bits, k) | match;
        const __m256d v0 = load2(amps + i0);
        const __m256d v1 = load2(amps + i0 + 2);
        acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(v0, v0));
        acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(v1, v1));
    }
    _mm256_storeu_pd(lanes, acc_lo);
    _mm256_storeu_pd(lanes + 4, acc_hi);
    for (; h < end; ++h) {
        const std::uint64_t i = expandIndex(h, bits, k) | match;
        const double re = amps[i].real();
        const double im = amps[i].imag();
        lanes[2 * (h & 3)] += re * re;
        lanes[2 * (h & 3) + 1] += im * im;
    }
    return true;
}

bool
probLanesAvx2(const Complex *amps, double *probs, std::uint64_t begin,
              std::uint64_t end, double *lanes)
{
    if (begin == end)
        return true;
    __m256d acc_lo = _mm256_loadu_pd(lanes);
    __m256d acc_hi = _mm256_loadu_pd(lanes + 4);
    std::uint64_t i = begin; // 8-aligned
    for (; i + 8 <= end; i += 8) {
        // hadd(a, b) = [a0+a1, b0+b1, a2+a3, b2+b3]; reorder to
        // [p0, p1, p2, p3] with a 0,2,1,3 permute. Each pair sum
        // rounds once, exactly like scalar re*re + im*im; the lane
        // accumulators then see the *stored* pair sums (plain
        // lanes[j & 7] rule), so the fused total is the same fold
        // sumLanes would produce over probs.
        const __m256d sq0 =
            _mm256_mul_pd(load2(amps + i), load2(amps + i));
        const __m256d sq1 =
            _mm256_mul_pd(load2(amps + i + 2), load2(amps + i + 2));
        const __m256d p0 = _mm256_permute4x64_pd(
            _mm256_hadd_pd(sq0, sq1), 0b11011000);
        const __m256d sq2 =
            _mm256_mul_pd(load2(amps + i + 4), load2(amps + i + 4));
        const __m256d sq3 =
            _mm256_mul_pd(load2(amps + i + 6), load2(amps + i + 6));
        const __m256d p1 = _mm256_permute4x64_pd(
            _mm256_hadd_pd(sq2, sq3), 0b11011000);
        _mm256_storeu_pd(probs + i, p0);
        _mm256_storeu_pd(probs + i + 4, p1);
        acc_lo = _mm256_add_pd(acc_lo, p0);
        acc_hi = _mm256_add_pd(acc_hi, p1);
    }
    _mm256_storeu_pd(lanes, acc_lo);
    _mm256_storeu_pd(lanes + 4, acc_hi);
    for (; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        const double p = re * re + im * im;
        probs[i] = p;
        lanes[i & 7] += p;
    }
    return true;
}

bool
normsAvx2(const Complex *amps, std::uint64_t begin, std::uint64_t end,
          double *out)
{
    if (begin == end)
        return true;
    std::uint64_t i = begin; // 4-aligned
    for (; i + 4 <= end; i += 4) {
        const __m256d sq0 =
            _mm256_mul_pd(load2(amps + i), load2(amps + i));
        const __m256d sq1 =
            _mm256_mul_pd(load2(amps + i + 2), load2(amps + i + 2));
        const __m256d had = _mm256_hadd_pd(sq0, sq1);
        _mm256_storeu_pd(out + (i - begin),
                         _mm256_permute4x64_pd(had, 0b11011000));
    }
    for (; i < end; ++i) {
        const double re = amps[i].real();
        const double im = amps[i].imag();
        out[i - begin] = re * re + im * im;
    }
    return true;
}

bool
sumLanesAvx2(const double *w, std::uint64_t begin, std::uint64_t end,
             double *lanes)
{
    if (begin == end)
        return true;
    __m256d acc_lo = _mm256_loadu_pd(lanes);
    __m256d acc_hi = _mm256_loadu_pd(lanes + 4);
    std::uint64_t j = begin; // 8-aligned
    for (; j + 8 <= end; j += 8) {
        acc_lo = _mm256_add_pd(acc_lo, _mm256_loadu_pd(w + j));
        acc_hi = _mm256_add_pd(acc_hi, _mm256_loadu_pd(w + j + 4));
    }
    _mm256_storeu_pd(lanes, acc_lo);
    _mm256_storeu_pd(lanes + 4, acc_hi);
    for (; j < end; ++j)
        lanes[j & 7] += w[j];
    return true;
}

} // namespace

const KernelTable kAvx2Table = {
    general1qAvx2,    diagonal1qAvx2,  antidiagonal1qAvx2,
    phaseOnMaskAvx2,  controlled1qAvx2, general2qAvx2,
};

const ReduceTable kAvx2Reduce = {
    normSqLanesAvx2,
    probLanesAvx2,
    normsAvx2,
    sumLanesAvx2,
};

} // namespace simd
} // namespace kernels
} // namespace qra
