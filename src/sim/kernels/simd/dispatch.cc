#include "sim/kernels/simd/dispatch.hh"

#include <atomic>
#include <cstdlib>
#include <string>

#include "common/logging.hh"

namespace qra {
namespace kernels {
namespace simd {

namespace {

int
clampToDetected(int tier)
{
    const int detected = static_cast<int>(detectedTier());
    if (tier < 0)
        return 0;
    return tier > detected ? detected : tier;
}

/**
 * CPU probe, independent of build flags. The portable tier needs no
 * CPU features, so any CPU "supports" at least Portable — whether it
 * is usable is compiledTier()'s call (detectedTier clamps).
 */
Tier
probeCpuTier()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq"))
        return Tier::Avx512;
    if (__builtin_cpu_supports("avx2"))
        return Tier::Avx2;
#endif
    return Tier::Portable;
}

/** QRA_SIMD environment selection, or -1 when absent/invalid. */
int
envTier()
{
    const char *env = std::getenv("QRA_SIMD");
    if (env == nullptr || *env == '\0')
        return -1;
    Tier tier;
    if (!parseTier(env, &tier)) {
        logWarn(std::string("ignoring invalid QRA_SIMD value '") + env +
                "' (want scalar|portable|avx2|avx512)");
        return -1;
    }
    return static_cast<int>(tier);
}

/** Startup default: env selection clamped to the detected tier. */
Tier
computeDefaultTier()
{
    const int env = envTier();
    if (env < 0)
        return detectedTier();
    return static_cast<Tier>(clampToDetected(env));
}

std::atomic<int> gProcessTier{-1};
thread_local int tThreadTier = -1;

} // namespace

const char *
tierName(Tier tier)
{
    switch (tier) {
    case Tier::Scalar:
        return "scalar";
    case Tier::Portable:
        return "portable";
    case Tier::Avx2:
        return "avx2";
    case Tier::Avx512:
        return "avx512";
    }
    return "?";
}

bool
parseTier(std::string_view name, Tier *out)
{
    if (name == "scalar") {
        *out = Tier::Scalar;
        return true;
    }
    if (name == "portable") {
        *out = Tier::Portable;
        return true;
    }
    if (name == "avx2") {
        *out = Tier::Avx2;
        return true;
    }
    if (name == "avx512") {
        *out = Tier::Avx512;
        return true;
    }
    return false;
}

Tier
compiledTier()
{
#if defined(QRA_SIMD_AVX512)
    return Tier::Avx512;
#elif defined(QRA_SIMD_AVX2)
    return Tier::Avx2;
#elif defined(QRA_SIMD_PORTABLE)
    return Tier::Portable;
#else
    return Tier::Scalar;
#endif
}

Tier
detectedTier()
{
    static const Tier detected = [] {
        const Tier cpu = probeCpuTier();
        return cpu < compiledTier() ? cpu : compiledTier();
    }();
    return detected;
}

Tier
currentTier()
{
    if (tThreadTier >= 0)
        return static_cast<Tier>(clampToDetected(tThreadTier));
    const int process = gProcessTier.load(std::memory_order_relaxed);
    if (process >= 0)
        return static_cast<Tier>(clampToDetected(process));
    static const Tier fallback = computeDefaultTier();
    return fallback;
}

void
setProcessTier(int tier)
{
    gProcessTier.store(tier < 0 ? -1 : tier,
                       std::memory_order_relaxed);
}

TierScope::TierScope(int tier) : saved_(tThreadTier)
{
    if (tier >= 0)
        tThreadTier = tier;
}

TierScope::~TierScope()
{
    tThreadTier = saved_;
}

std::vector<Tier>
availableTiers()
{
    std::vector<Tier> tiers{Tier::Scalar};
    const Tier top = detectedTier();
    (void)top;
#ifdef QRA_SIMD_PORTABLE
    if (top >= Tier::Portable)
        tiers.push_back(Tier::Portable);
#endif
#ifdef QRA_SIMD_AVX2
    if (top >= Tier::Avx2)
        tiers.push_back(Tier::Avx2);
#endif
#ifdef QRA_SIMD_AVX512
    if (top >= Tier::Avx512)
        tiers.push_back(Tier::Avx512);
#endif
    return tiers;
}

Ladder
activeLadder()
{
    Ladder ladder;
    const Tier tier = currentTier();
    (void)tier;
#ifdef QRA_SIMD_AVX512
    if (tier >= Tier::Avx512) {
        ladder.tables[ladder.count] = &kAvx512Table;
        ladder.tiers[ladder.count] = Tier::Avx512;
        ++ladder.count;
    }
#endif
#ifdef QRA_SIMD_AVX2
    if (tier >= Tier::Avx2) {
        ladder.tables[ladder.count] = &kAvx2Table;
        ladder.tiers[ladder.count] = Tier::Avx2;
        ++ladder.count;
    }
#endif
#ifdef QRA_SIMD_PORTABLE
    if (tier >= Tier::Portable) {
        ladder.tables[ladder.count] = &kPortableTable;
        ladder.tiers[ladder.count] = Tier::Portable;
        ++ladder.count;
    }
#endif
    return ladder;
}

ReduceLadder
activeReduceLadder()
{
    ReduceLadder ladder;
    const Tier tier = currentTier();
    (void)tier;
#ifdef QRA_SIMD_AVX512
    if (tier >= Tier::Avx512) {
        ladder.tables[ladder.count] = &kAvx512Reduce;
        ladder.tiers[ladder.count] = Tier::Avx512;
        ++ladder.count;
    }
#endif
#ifdef QRA_SIMD_AVX2
    if (tier >= Tier::Avx2) {
        ladder.tables[ladder.count] = &kAvx2Reduce;
        ladder.tiers[ladder.count] = Tier::Avx2;
        ++ladder.count;
    }
#endif
#ifdef QRA_SIMD_PORTABLE
    if (tier >= Tier::Portable) {
        ladder.tables[ladder.count] = &kPortableReduce;
        ladder.tiers[ladder.count] = Tier::Portable;
        ++ladder.count;
    }
#endif
    return ladder;
}

} // namespace simd
} // namespace kernels
} // namespace qra
