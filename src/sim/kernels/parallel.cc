#include "sim/kernels/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace qra {
namespace kernels {

namespace {

thread_local ParallelConfig tls_config;

} // namespace

const ParallelConfig &
currentParallelConfig()
{
    return tls_config;
}

ParallelScope::ParallelScope(runtime::ThreadPool *pool, std::size_t lanes)
    : saved_(tls_config)
{
    tls_config.pool = pool;
    tls_config.lanes = std::max<std::size_t>(1, lanes);
}

ParallelScope::~ParallelScope()
{
    tls_config = saved_;
}

void
parallelForSplit(
    std::uint64_t n, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)> &fn)
{
    const ParallelConfig &cfg = tls_config;
    const std::uint64_t chunks =
        std::min<std::uint64_t>(cfg.lanes, (n + grain - 1) / grain);
    const std::uint64_t base = n / chunks;
    const std::uint64_t remainder = n % chunks;

    std::atomic<std::uint64_t> pending{chunks - 1};
    std::exception_ptr error;
    std::mutex error_mutex;
    auto run_chunk = [&](std::uint64_t begin, std::uint64_t end) {
        try {
            fn(begin, end);
        } catch (...) {
            std::lock_guard<std::mutex> lock(error_mutex);
            if (!error)
                error = std::current_exception();
        }
    };

    // Chunk 0 runs inline; the rest go to the pool. Chunk boundaries
    // depend only on (n, grain, lanes), never on scheduling.
    std::uint64_t begin = base + (remainder > 0 ? 1 : 0);
    for (std::uint64_t c = 1; c < chunks; ++c) {
        const std::uint64_t size = base + (c < remainder ? 1 : 0);
        const std::uint64_t end = begin + size;
        cfg.pool->submit([&run_chunk, &pending, begin, end]() {
            run_chunk(begin, end);
            pending.fetch_sub(1, std::memory_order_acq_rel);
        });
        begin = end;
    }
    run_chunk(0, base + (remainder > 0 ? 1 : 0));

    // Help drain the pool instead of blocking, so a pool worker that
    // split its own loop can never deadlock the pool.
    while (pending.load(std::memory_order_acquire) > 0) {
        if (!cfg.pool->runOne())
            std::this_thread::yield();
    }
    if (error)
        std::rethrow_exception(error);
}

double
deterministicSumSplit(
    std::uint64_t n,
    const std::function<double(std::uint64_t, std::uint64_t)> &fn)
{
    const std::uint64_t blocks = (n + kReduceBlock - 1) / kReduceBlock;
    std::vector<double> partials(blocks, 0.0);
    parallelFor(blocks, /*grain=*/1,
                [&](std::uint64_t b0, std::uint64_t b1) {
                    for (std::uint64_t b = b0; b < b1; ++b) {
                        const std::uint64_t begin = b * kReduceBlock;
                        const std::uint64_t end =
                            std::min(n, begin + kReduceBlock);
                        partials[b] = fn(begin, end);
                    }
                });

    double total = 0.0;
    for (double partial : partials)
        total += partial;
    return total;
}

} // namespace kernels
} // namespace qra
