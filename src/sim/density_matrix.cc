#include "sim/density_matrix.hh"

#include <cmath>

#include "common/error.hh"
#include "math/linalg.hh"
#include "noise/kraus.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/parallel.hh"

namespace qra {

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : numQubits_(num_qubits),
      rho_(std::size_t{1} << num_qubits, std::size_t{1} << num_qubits)
{
    if (num_qubits == 0 || num_qubits > 12)
        throw SimulationError("density matrix supports 1..12 qubits");
    rho_(0, 0) = 1.0;
}

DensityMatrix
DensityMatrix::fromPureState(const std::vector<Complex> &amps)
{
    const std::size_t dim = amps.size();
    if (dim < 2 || (dim & (dim - 1)) != 0)
        throw SimulationError("amplitude count must be a power of two");
    std::size_t num_qubits = 0;
    while ((std::size_t{1} << num_qubits) < dim)
        ++num_qubits;

    DensityMatrix dm(num_qubits);
    dm.rho_ = linalg::outer(amps);
    return dm;
}

void
DensityMatrix::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw IndexError("qubit index " + std::to_string(q) +
                         " out of range");
}

void
DensityMatrix::leftMultiply(const Matrix &a,
                            const std::vector<Qubit> &qubits)
{
    // Columns transform independently; split them across the scoped
    // pool (each lane owns a disjoint column range of rho_).
    const std::size_t d = dim();
    kernels::parallelFor(
        d, /*grain=*/8, [&](std::uint64_t c0, std::uint64_t c1) {
            std::vector<Complex> column(d);
            for (std::size_t c = c0; c < c1; ++c) {
                for (std::size_t r = 0; r < d; ++r)
                    column[r] = rho_(r, c);
                kernels::applyMatrix(column, a, qubits);
                for (std::size_t r = 0; r < d; ++r)
                    rho_(r, c) = column[r];
            }
        });
}

void
DensityMatrix::rightMultiplyAdjoint(const Matrix &a,
                                    const std::vector<Qubit> &qubits)
{
    // (rho A^dagger)_{rc} = sum_k rho_{rk} conj(A_{ck}); each row of
    // rho transforms by conj(A) acting on the column-index space.
    const Matrix conj_a = a.conjugate();
    const std::size_t d = dim();
    kernels::parallelFor(
        d, /*grain=*/8, [&](std::uint64_t r0, std::uint64_t r1) {
            std::vector<Complex> row(d);
            for (std::size_t r = r0; r < r1; ++r) {
                for (std::size_t c = 0; c < d; ++c)
                    row[c] = rho_(r, c);
                kernels::applyMatrix(row, conj_a, qubits);
                for (std::size_t c = 0; c < d; ++c)
                    rho_(r, c) = row[c];
            }
        });
}

void
DensityMatrix::applyMatrix(const Matrix &u,
                           const std::vector<Qubit> &qubits)
{
    for (Qubit q : qubits)
        checkQubit(q);
    leftMultiply(u, qubits);
    rightMultiplyAdjoint(u, qubits);
}

void
DensityMatrix::applyUnitary(const Operation &op)
{
    if (!opIsUnitary(op.kind))
        throw SimulationError(std::string("applyUnitary on '") +
                              opName(op.kind) + "'");
    if (op.kind == OpKind::I)
        return;
    applyMatrix(op.matrix(), op.qubits);
}

void
DensityMatrix::applyKraus(const KrausChannel &channel,
                          const std::vector<Qubit> &qubits)
{
    for (Qubit q : qubits)
        checkQubit(q);

    Matrix accumulated(dim(), dim());
    for (const Matrix &k : channel.operators()) {
        DensityMatrix term(*this);
        term.leftMultiply(k, qubits);
        term.rightMultiplyAdjoint(k, qubits);
        accumulated += term.rho_;
    }
    rho_ = std::move(accumulated);
}

double
DensityMatrix::probabilityOfOne(Qubit q) const
{
    checkQubit(q);
    const std::uint64_t bit = std::uint64_t{1} << q;
    double p1 = 0.0;
    for (std::uint64_t i = 0; i < dim(); ++i)
        if (i & bit)
            p1 += rho_(i, i).real();
    return std::clamp(p1, 0.0, 1.0);
}

void
DensityMatrix::dephase(Qubit q)
{
    checkQubit(q);
    const std::uint64_t bit = std::uint64_t{1} << q;
    for (std::uint64_t r = 0; r < dim(); ++r)
        for (std::uint64_t c = 0; c < dim(); ++c)
            if ((r & bit) != (c & bit))
                rho_(r, c) = 0.0;
}

double
DensityMatrix::postSelect(Qubit q, int outcome)
{
    checkQubit(q);
    const double p1 = probabilityOfOne(q);
    const double p = outcome ? p1 : 1.0 - p1;
    if (p < 1e-12)
        throw SimulationError(
            "post-selection onto a zero-probability branch (qubit " +
            std::to_string(q) + " == " + std::to_string(outcome) + ")");

    const std::uint64_t bit = std::uint64_t{1} << q;
    for (std::uint64_t r = 0; r < dim(); ++r) {
        for (std::uint64_t c = 0; c < dim(); ++c) {
            const bool r_ok = ((r & bit) != 0) == (outcome == 1);
            const bool c_ok = ((c & bit) != 0) == (outcome == 1);
            if (r_ok && c_ok)
                rho_(r, c) /= p;
            else
                rho_(r, c) = 0.0;
        }
    }
    return p;
}

void
DensityMatrix::resetQubit(Qubit q)
{
    checkQubit(q);
    // Reset = Kraus channel {|0><0|, |0><1|}.
    const Matrix k0{{Complex{1.0, 0.0}, Complex{0.0, 0.0}},
                    {Complex{0.0, 0.0}, Complex{0.0, 0.0}}};
    const Matrix k1{{Complex{0.0, 0.0}, Complex{1.0, 0.0}},
                    {Complex{0.0, 0.0}, Complex{0.0, 0.0}}};
    applyKraus(KrausChannel({k0, k1}, "reset"), {q});
}

std::vector<double>
DensityMatrix::probabilities() const
{
    std::vector<double> probs(dim());
    for (std::size_t i = 0; i < dim(); ++i)
        probs[i] = std::max(0.0, rho_(i, i).real());
    return probs;
}

double
DensityMatrix::purity() const
{
    return linalg::purity(rho_);
}

double
DensityMatrix::fidelityWithPure(const std::vector<Complex> &psi) const
{
    return linalg::mixedStateFidelity(rho_, psi);
}

Matrix
DensityMatrix::reducedQubitDensity(Qubit q) const
{
    checkQubit(q);
    std::vector<std::size_t> traced;
    for (std::size_t i = 0; i < numQubits_; ++i)
        if (i != q)
            traced.push_back(i);
    return linalg::partialTrace(rho_, numQubits_, traced);
}

double
DensityMatrix::trace() const
{
    return rho_.trace().real();
}

} // namespace qra
