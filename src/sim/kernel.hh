/**
 * @file
 * Shared gate-application kernel: applies a k-qubit matrix to a
 * 2^n amplitude array in place. Used by the state-vector backend
 * directly and by the density-matrix backend on its rows/columns.
 */

#ifndef QRA_SIM_KERNEL_HH
#define QRA_SIM_KERNEL_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/error.hh"
#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {
namespace kernel {

/**
 * Apply matrix @p u to @p amps on target @p qubits; matrix bit j
 * corresponds to qubits[j]. @p amps.size() must be a power of two at
 * least as large as the targeted subspace.
 */
inline void
applyMatrix(std::vector<Complex> &amps, const Matrix &u,
            const std::vector<Qubit> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t block = std::size_t{1} << k;
    QRA_ASSERT(u.rows() == block && u.cols() == block,
               "matrix size does not match operand count");

    if (k == 1) {
        const std::uint64_t bit = std::uint64_t{1} << qubits[0];
        const Complex m00 = u(0, 0), m01 = u(0, 1);
        const Complex m10 = u(1, 0), m11 = u(1, 1);
        for (std::uint64_t i = 0; i < amps.size(); ++i) {
            if (i & bit)
                continue;
            const Complex a0 = amps[i];
            const Complex a1 = amps[i | bit];
            amps[i] = m00 * a0 + m01 * a1;
            amps[i | bit] = m10 * a0 + m11 * a1;
        }
        return;
    }

    std::vector<std::uint64_t> bits(k);
    for (std::size_t j = 0; j < k; ++j)
        bits[j] = std::uint64_t{1} << qubits[j];
    std::vector<std::uint64_t> insert_order = bits;
    std::sort(insert_order.begin(), insert_order.end());

    std::vector<std::uint64_t> offsets(block, 0);
    for (std::size_t local = 0; local < block; ++local)
        for (std::size_t j = 0; j < k; ++j)
            if ((local >> j) & 1)
                offsets[local] |= bits[j];

    std::vector<Complex> in(block), out(block);
    const std::uint64_t bases = amps.size() >> k;
    for (std::uint64_t b = 0; b < bases; ++b) {
        std::uint64_t base = b;
        for (std::uint64_t mask : insert_order) {
            const std::uint64_t low = base & (mask - 1);
            base = ((base & ~(mask - 1)) << 1) | low;
        }
        for (std::size_t local = 0; local < block; ++local)
            in[local] = amps[base | offsets[local]];
        for (std::size_t r = 0; r < block; ++r) {
            Complex acc{0.0, 0.0};
            for (std::size_t c = 0; c < block; ++c)
                acc += u(r, c) * in[c];
            out[r] = acc;
        }
        for (std::size_t local = 0; local < block; ++local)
            amps[base | offsets[local]] = out[local];
    }
}

} // namespace kernel
} // namespace qra

#endif // QRA_SIM_KERNEL_HH
