#include "sim/trajectory_simulator.hh"

#include <cmath>

#include "circuit/schedule.hh"
#include "common/error.hh"
#include "sim/kernels/kernels.hh"
#include "sim/shot_util.hh"

namespace qra {

TrajectorySimulator::TrajectorySimulator(std::uint64_t seed) : rng_(seed)
{
}

void
TrajectorySimulator::sampleKraus(StateVector &state,
                                 const KrausChannel &channel,
                                 const std::vector<Qubit> &qubits)
{
    const auto &ops = channel.operators();
    if (ops.size() == 1) {
        state.applyMatrix(ops[0], qubits);
        return;
    }

    // Born weights of each branch: ||K_k psi||^2. Kraus operators are
    // not unitary, so apply them to raw amplitude copies.
    std::vector<std::vector<Complex>> branches(ops.size());
    std::vector<double> weights(ops.size());
    for (std::size_t k = 0; k < ops.size(); ++k) {
        branches[k] = state.amplitudes();
        kernels::applyMatrix(branches[k], ops[k], qubits);
        double norm_sq = 0.0;
        for (const Complex &a : branches[k])
            norm_sq += std::norm(a);
        weights[k] = norm_sq;
    }

    const std::size_t chosen = sampleDiscrete(weights, rng_);
    // fromAmplitudes renormalises the selected branch.
    state = StateVector::fromAmplitudes(std::move(branches[chosen]));
}

std::vector<TimedMoment>
TrajectorySimulator::scheduleFor(const Circuit &circuit) const
{
    const bool noisy = noise_ != nullptr && noise_->enabled();
    auto duration = [&](const Operation &op) {
        return noisy ? noise_->opDuration(op) : 0.0;
    };
    return computeTimedMoments(circuit, duration);
}

bool
TrajectorySimulator::runShot(const Circuit &circuit,
                             const std::vector<TimedMoment> &moments,
                             StateVector &state,
                             std::uint64_t &register_value)
{
    const bool noisy = noise_ != nullptr && noise_->enabled();

    register_value = 0;
    for (const TimedMoment &moment : moments) {
        for (std::size_t idx : moment.opIndices) {
            const Operation &op = circuit.ops()[idx];
            switch (op.kind) {
              case OpKind::Measure:
              {
                int outcome = state.measure(op.qubits[0], rng_);
                if (noisy) {
                    const ReadoutError *ro =
                        noise_->readoutFor(op.qubits[0]);
                    if (ro != nullptr)
                        outcome = ro->sampleReadout(outcome, rng_);
                }
                if (outcome)
                    register_value |= std::uint64_t{1} << *op.clbit;
                else
                    register_value &= ~(std::uint64_t{1} << *op.clbit);
                continue;
              }
              case OpKind::Barrier:
                continue;
              case OpKind::Reset:
                state.resetQubit(op.qubits[0], rng_);
                break;
              case OpKind::PostSelect:
              {
                const double p1 =
                    state.probabilityOfOne(op.qubits[0]);
                const double p =
                    op.postselectValue ? p1 : 1.0 - p1;
                if (p < 1e-12)
                    return false; // discard this trajectory
                // Probabilistic conditioning: the trajectory survives
                // with probability p, reproducing the post-selected
                // ensemble without bias.
                if (rng_.uniform() >= p)
                    return false;
                state.postSelect(op.qubits[0], op.postselectValue);
                continue;
              }
              default:
                state.applyUnitary(op);
                break;
            }

            if (noisy) {
                for (const auto &applied : noise_->channelsFor(op))
                    sampleKraus(state, applied.channel, applied.qubits);
            }
        }

        if (noisy && moment.durationNs > 0.0) {
            for (Qubit q = 0; q < circuit.numQubits(); ++q) {
                if (auto relax =
                        noise_->relaxationFor(q, moment.durationNs))
                    sampleKraus(state, *relax, {q});
            }
        }
    }
    return true;
}

Result
TrajectorySimulator::run(const Circuit &circuit, std::size_t shots)
{
    Result result(circuit.numClbits());
    std::size_t attempted = 0;
    std::size_t kept = 0;

    // The schedule depends only on the circuit and noise model;
    // compute it once, not per trajectory.
    const std::vector<TimedMoment> moments = scheduleFor(circuit);

    // Cap retries so pathological post-selections terminate
    // (saturating to avoid overflow at extreme shot counts).
    const std::size_t max_attempts = postSelectAttemptBudget(shots);
    while (kept < shots && attempted < max_attempts) {
        ++attempted;
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        if (!runShot(circuit, moments, state, reg))
            continue;
        result.record(reg);
        ++kept;
    }
    if (kept < shots)
        throw SimulationError("post-selection discarded nearly every "
                              "trajectory; circuit is inconsistent");

    result.setRetainedFraction(static_cast<double>(kept) /
                               static_cast<double>(attempted));
    return result;
}

StateVector
TrajectorySimulator::evolveOne(const Circuit &circuit)
{
    const std::vector<TimedMoment> moments = scheduleFor(circuit);
    for (int attempt = 0; attempt < 1000; ++attempt) {
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        if (runShot(circuit, moments, state, reg))
            return state;
    }
    throw SimulationError("post-selection discarded every trajectory");
}

} // namespace qra
