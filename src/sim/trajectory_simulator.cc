#include "sim/trajectory_simulator.hh"

#include <cmath>

#include "common/error.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/plan_cache.hh"
#include "sim/shot_util.hh"

namespace qra {

TrajectorySimulator::TrajectorySimulator(std::uint64_t seed) : rng_(seed)
{
}

namespace {

/**
 * Guard against sampleDiscrete's drift fallback: when cumulative
 * rounding lets the draw fall past every branch, the last index comes
 * back even if its Born weight is zero — redirect to the heaviest
 * branch instead of collapsing onto an impossible one.
 */
std::size_t
nonDegenerateBranch(const std::vector<double> &weights,
                    std::size_t chosen)
{
    if (weights[chosen] > 1e-30)
        return chosen;
    std::size_t best = chosen;
    for (std::size_t k = 0; k < weights.size(); ++k)
        if (weights[k] > weights[best])
            best = k;
    return best;
}

} // namespace

void
TrajectorySimulator::sampleGeneralKraus(StateVector &state,
                                        const std::vector<Matrix> &ops,
                                        const std::vector<Qubit> &qubits)
{
    // Born weights of each branch: ||K_k psi||^2. Kraus operators are
    // not unitary, so apply them to raw amplitude copies.
    std::vector<std::vector<Complex>> branches(ops.size());
    std::vector<double> weights(ops.size());
    for (std::size_t k = 0; k < ops.size(); ++k) {
        branches[k] = state.amplitudes();
        kernels::applyMatrix(branches[k], ops[k], qubits);
        double norm_sq = 0.0;
        for (const Complex &a : branches[k])
            norm_sq += std::norm(a);
        weights[k] = norm_sq;
    }

    const std::size_t chosen =
        nonDegenerateBranch(weights, sampleDiscrete(weights, rng_));
    // fromAmplitudes renormalises the selected branch.
    state = StateVector::fromAmplitudes(std::move(branches[chosen]));
}

void
TrajectorySimulator::sampleKraus(StateVector &state,
                                 const KrausChannel &channel,
                                 const std::vector<Qubit> &qubits)
{
    const auto &ops = channel.operators();
    if (ops.size() == 1) {
        state.applyMatrix(ops[0], qubits);
        return;
    }
    sampleGeneralKraus(state, ops, qubits);
}

void
TrajectorySimulator::sampleSite(const kernels::KrausSite &site,
                                StateVector &state)
{
    if (site.fixedWeights) {
        // Scaled-unitary branches: state-independent weights, one
        // uniform draw, one or two in-place kernels (tensor-product
        // branches split). No copies, no norms.
        const std::size_t chosen = sampleDiscrete(site.weights, rng_);
        for (const kernels::PlanEntry &entry : site.branches[chosen])
            state.applyKernel(entry);
        return;
    }
    if (site.qubits.size() == 1) {
        // State-dependent one-qubit channel (thermal relaxation):
        // weights in one read-only pass per branch, then the chosen
        // operator applied in place and renormalised by its weight.
        const std::uint64_t n = state.dim();
        std::vector<double> weights(site.ops.size());
        for (std::size_t k = 0; k < site.ops.size(); ++k) {
            const Matrix &op = site.ops[k];
            const Complex m[4] = {op(0, 0), op(0, 1), op(1, 0),
                                  op(1, 1)};
            weights[k] = kernels::branchWeight1q(
                state.amplitudes().data(), n, site.qubits[0], m);
        }
        const std::size_t chosen = nonDegenerateBranch(
            weights, sampleDiscrete(weights, rng_));
        state.applyKrausBranch(site.ops[chosen], site.qubits,
                               weights[chosen]);
        return;
    }
    // General multi-qubit channel: the copy-based reference path.
    sampleGeneralKraus(state, site.ops, site.qubits);
}

std::vector<TimedMoment>
TrajectorySimulator::scheduleFor(const Circuit &circuit) const
{
    const bool noisy = noise_ != nullptr && noise_->enabled();
    auto duration = [&](const Operation &op) {
        return noisy ? noise_->opDuration(op) : 0.0;
    };
    return computeTimedMoments(circuit, duration);
}

bool
TrajectorySimulator::runShot(const Circuit &circuit,
                             const std::vector<TimedMoment> &moments,
                             StateVector &state,
                             std::uint64_t &register_value)
{
    const bool noisy = noise_ != nullptr && noise_->enabled();

    register_value = 0;
    for (const TimedMoment &moment : moments) {
        for (std::size_t idx : moment.opIndices) {
            const Operation &op = circuit.ops()[idx];
            switch (op.kind) {
              case OpKind::Measure:
              {
                int outcome = state.measure(op.qubits[0], rng_);
                if (noisy) {
                    const ReadoutError *ro =
                        noise_->readoutFor(op.qubits[0]);
                    if (ro != nullptr)
                        outcome = ro->sampleReadout(outcome, rng_);
                }
                if (outcome)
                    register_value |= std::uint64_t{1} << *op.clbit;
                else
                    register_value &= ~(std::uint64_t{1} << *op.clbit);
                continue;
              }
              case OpKind::Barrier:
                continue;
              case OpKind::Reset:
                state.resetQubit(op.qubits[0], rng_);
                break;
              case OpKind::PostSelect:
              {
                const double p1 =
                    state.probabilityOfOne(op.qubits[0]);
                const double p =
                    op.postselectValue ? p1 : 1.0 - p1;
                if (p < 1e-12)
                    return false; // discard this trajectory
                // Probabilistic conditioning: the trajectory survives
                // with probability p, reproducing the post-selected
                // ensemble without bias.
                if (rng_.uniform() >= p)
                    return false;
                state.postSelect(op.qubits[0], op.postselectValue);
                continue;
              }
              default:
                state.applyUnitary(op);
                break;
            }

            if (noisy) {
                for (const auto &applied : noise_->channelsFor(op))
                    sampleKraus(state, applied.channel, applied.qubits);
            }
        }

        if (noisy && moment.durationNs > 0.0) {
            for (Qubit q = 0; q < circuit.numQubits(); ++q) {
                if (auto relax =
                        noise_->relaxationFor(q, moment.durationNs))
                    sampleKraus(state, *relax, {q});
            }
        }
    }
    return true;
}

bool
TrajectorySimulator::runShotPlan(const kernels::TrajectoryPlan &plan,
                                 StateVector &state,
                                 std::uint64_t &register_value)
{
    using kernels::KernelKind;
    register_value = 0;
    for (const kernels::PlanEntry &entry : plan.entries()) {
        switch (entry.kind) {
          case KernelKind::Measure:
          {
            int outcome = state.measure(entry.q0, rng_);
            if (entry.site >= 0)
                outcome = plan.readout(entry.site)
                              .sampleReadout(outcome, rng_);
            if (outcome)
                register_value |= std::uint64_t{1} << entry.clbit;
            else
                register_value &= ~(std::uint64_t{1} << entry.clbit);
            continue;
          }
          case KernelKind::ResetQ:
            state.resetQubit(entry.q0, rng_);
            continue;
          case KernelKind::PostSelectQ:
          {
            const double p1 = state.probabilityOfOne(entry.q0);
            const double p = entry.postselectValue ? p1 : 1.0 - p1;
            if (p < 1e-12)
                return false; // discard this trajectory
            if (rng_.uniform() >= p)
                return false;
            state.postSelect(entry.q0, entry.postselectValue);
            continue;
          }
          case KernelKind::SampleKraus:
            sampleSite(plan.site(entry.site), state);
            continue;
          default:
            state.applyKernel(entry);
        }
    }
    return true;
}

std::shared_ptr<const kernels::TrajectoryPlan>
TrajectorySimulator::planFor(const Circuit &circuit) const
{
    if (kernels::PlanCache *cache = kernels::currentPlanCache())
        return cache->trajectoryPlan(circuit, noise_,
                                     kernels::currentFusionLevel());
    return std::make_shared<const kernels::TrajectoryPlan>(
        kernels::TrajectoryPlan::compile(circuit, noise_));
}

Result
TrajectorySimulator::run(const Circuit &circuit, std::size_t shots)
{
    Result result(circuit.numClbits());
    std::size_t attempted = 0;
    std::size_t kept = 0;

    // Lower once per job (or fetch the cached artifact): every shot
    // replays classified kernels and pre-built noise sites. The
    // legacy interpreter re-walks Operation structs but consumes the
    // identical RNG stream.
    std::shared_ptr<const kernels::TrajectoryPlan> plan;
    std::vector<TimedMoment> moments;
    if (usePlan_)
        plan = planFor(circuit);
    else
        moments = scheduleFor(circuit);

    // Cap retries so pathological post-selections terminate
    // (saturating to avoid overflow at extreme shot counts).
    const std::size_t max_attempts = postSelectAttemptBudget(shots);
    while (kept < shots && attempted < max_attempts) {
        ++attempted;
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        const bool kept_shot =
            usePlan_ ? runShotPlan(*plan, state, reg)
                     : runShot(circuit, moments, state, reg);
        if (!kept_shot)
            continue;
        result.record(reg);
        ++kept;
    }
    if (kept < shots)
        throw SimulationError("post-selection discarded nearly every "
                              "trajectory; circuit is inconsistent");

    result.setRetainedFraction(static_cast<double>(kept) /
                               static_cast<double>(attempted));
    return result;
}

StateVector
TrajectorySimulator::evolveOne(const Circuit &circuit)
{
    std::shared_ptr<const kernels::TrajectoryPlan> plan;
    std::vector<TimedMoment> moments;
    if (usePlan_)
        plan = planFor(circuit);
    else
        moments = scheduleFor(circuit);
    for (int attempt = 0; attempt < 1000; ++attempt) {
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        const bool kept_shot =
            usePlan_ ? runShotPlan(*plan, state, reg)
                     : runShot(circuit, moments, state, reg);
        if (kept_shot)
            return state;
    }
    throw SimulationError("post-selection discarded every trajectory");
}

} // namespace qra
