/**
 * @file
 * Execution result: measurement counts keyed by classical-register
 * value, plus optional per-shot memory and exact probabilities.
 */

#ifndef QRA_SIM_RESULT_HH
#define QRA_SIM_RESULT_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qra {

/**
 * Execution bookkeeping the runtime stamps onto a merged Result:
 * how the job was carved up and where its wall-clock time went.
 * Always populated by the JobQueue/ExecutionEngine paths (it costs a
 * couple of clock reads per *job*, independent of telemetry being
 * on); default for Results built directly by a simulator.
 */
struct ExecStats
{
    /** Shards executed and merged into this result. */
    std::size_t shards = 0;
    /** Adaptive waves executed (0 = single-block run). */
    std::size_t waves = 0;
    /** True when the JobQueue's prepare cache supplied the circuit. */
    bool prepareCacheHit = false;
    /** Injection + transpile time this submission spent (usually 0
        on a cache hit). */
    double prepareSeconds = 0.0;
    /** Engine dispatch-to-merge wall time. */
    double engineSeconds = 0.0;
    /** Shard attempts re-run after a transient failure (RetryPolicy). */
    std::size_t retries = 0;
    /** Shots adopted from a JobCheckpoint instead of re-executed. */
    std::size_t resumedShots = 0;
};

/** Counts and metadata from running a circuit for some shots. */
class Result
{
  public:
    Result() = default;

    /**
     * @param num_clbits Width of the classical register; outcome keys
     *        are rendered as bitstrings of this width (MSB first,
     *        clbit 0 rightmost).
     */
    explicit Result(std::size_t num_clbits);

    std::size_t numClbits() const { return numClbits_; }

    /** Total number of recorded shots. */
    std::size_t shots() const { return shots_; }

    /** Record one shot with classical-register value @p outcome. */
    void record(std::uint64_t outcome);

    /** Record @p count shots of the same outcome. */
    void record(std::uint64_t outcome, std::size_t count);

    /** Counts keyed by integer register value. */
    const std::map<std::uint64_t, std::size_t> &rawCounts() const
    {
        return counts_;
    }

    /** Counts keyed by rendered bitstring. */
    std::map<std::string, std::size_t> counts() const;

    /** Count for a specific integer outcome (0 if absent). */
    std::size_t count(std::uint64_t outcome) const;

    /** Count looked up by bitstring key, e.g. "011". */
    std::size_t count(const std::string &bits) const;

    /** Empirical probability of an integer outcome. */
    double probability(std::uint64_t outcome) const;

    /** Empirical probability of a bitstring outcome. */
    double probability(const std::string &bits) const;

    /** Outcome with the highest count. @throws Error if empty. */
    std::uint64_t mostFrequent() const;

    /**
     * Exact outcome distribution, if the backend computed one (the
     * density-matrix backend does). Keyed by register value.
     */
    const std::optional<std::map<std::uint64_t, double>> &
    exactDistribution() const
    {
        return exact_;
    }

    void setExactDistribution(std::map<std::uint64_t, double> dist);

    /**
     * Fraction of trajectories discarded by PostSelect directives
     * (1.0 means nothing was discarded).
     */
    double retainedFraction() const { return retainedFraction_; }
    void setRetainedFraction(double f) { retainedFraction_ = f; }

    /**
     * True when an adaptive (wave-based) run converged on its
     * stopping rule before exhausting the shot budget; shots() then
     * holds the shots actually taken.
     */
    bool stoppedEarly() const { return stoppedEarly_; }
    void setStoppedEarly(bool stopped) { stoppedEarly_ = stopped; }

    /**
     * The shot budget the job asked for. Equals shots() for fixed
     * runs; an early-stopped adaptive run reports the full budget
     * here and the (smaller) shots taken in shots().
     */
    std::size_t shotsRequested() const
    {
        return shotsRequested_ != 0 ? shotsRequested_ : shots_;
    }
    void setShotsRequested(std::size_t shots)
    {
        shotsRequested_ = shots;
    }

    /**
     * True when the job was cancelled (CancelToken or deadline)
     * before its budget completed. The counts are the merge of
     * exactly the shards that finished — bit-identical to those
     * shards of an uncancelled run — and shots() < shotsRequested().
     */
    bool cancelled() const { return cancelled_; }

    /** Why the job was cancelled: "user" or "deadline" (empty when
        not cancelled). */
    const std::string &cancelReason() const { return cancelReason_; }

    void setCancelled(std::string reason)
    {
        cancelled_ = true;
        cancelReason_ = std::move(reason);
    }

    /**
     * Where this result's execution time went (see ExecStats).
     * Stamped by the runtime after the merge; merge() itself leaves
     * it untouched.
     */
    const ExecStats &execStats() const { return execStats_; }
    void setExecStats(const ExecStats &stats) { execStats_ = stats; }

    /**
     * Merge the counts of another result (same width required).
     * Merging two results that carry *different* exact distributions
     * is refused: shards of one job always carry identical copies, so
     * a mismatch means the caller merged distinct jobs and the exact
     * data of one would silently misrepresent the union.
     */
    void merge(const Result &other);

    /** Multi-line "bits  count  percent" table sorted by outcome. */
    std::string str() const;

  private:
    std::size_t numClbits_ = 0;
    std::size_t shots_ = 0;
    std::map<std::uint64_t, std::size_t> counts_;
    std::optional<std::map<std::uint64_t, double>> exact_;
    double retainedFraction_ = 1.0;
    bool stoppedEarly_ = false;
    bool cancelled_ = false;
    std::string cancelReason_;
    /** 0 = "same as shots()" so plain results need no bookkeeping. */
    std::size_t shotsRequested_ = 0;
    ExecStats execStats_;
};

} // namespace qra

#endif // QRA_SIM_RESULT_HH
