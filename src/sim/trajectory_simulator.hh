/**
 * @file
 * Monte-Carlo (quantum trajectory) noisy simulator on the state-vector
 * backend. Each shot samples one Kraus branch per noise insertion,
 * performs real measurement collapses, and flips recorded bits per the
 * readout confusion model.
 *
 * Handles everything the density backend rejects (ancilla reuse,
 * mid-circuit reset after measurement) and scales to more qubits, at
 * the cost of sampling error ~ 1/sqrt(shots).
 */

#ifndef QRA_SIM_TRAJECTORY_SIMULATOR_HH
#define QRA_SIM_TRAJECTORY_SIMULATOR_HH

#include <cstdint>

#include "circuit/circuit.hh"
#include "circuit/schedule.hh"
#include "common/rng.hh"
#include "noise/noise_model.hh"
#include "sim/result.hh"
#include "sim/state_vector.hh"

namespace qra {

/** Stochastic noisy execution engine. */
class TrajectorySimulator
{
  public:
    explicit TrajectorySimulator(std::uint64_t seed = 7);

    /** Attach a noise model (nullptr or unset = ideal). */
    void setNoiseModel(const NoiseModel *noise) { noise_ = noise; }

    /**
     * Execute @p shots independent trajectories.
     *
     * Shots whose PostSelect directive lands on a zero-probability
     * branch are discarded (and reflected in retainedFraction()).
     */
    Result run(const Circuit &circuit, std::size_t shots);

    /** Evolve a single noisy trajectory and return its final state. */
    StateVector evolveOne(const Circuit &circuit);

    void seed(std::uint64_t seed) { rng_.seed(seed); }

  private:
    /**
     * Apply one Kraus branch of @p channel, sampled with the Born
     * weights ||K_k psi||^2.
     */
    void sampleKraus(StateVector &state, const KrausChannel &channel,
                     const std::vector<Qubit> &qubits);

    /** Timed schedule of @p circuit (computed once per run). */
    std::vector<TimedMoment> scheduleFor(const Circuit &circuit) const;

    /** @return false if the shot must be discarded (post-selection). */
    bool runShot(const Circuit &circuit,
                 const std::vector<TimedMoment> &moments,
                 StateVector &state, std::uint64_t &register_value);

    const NoiseModel *noise_ = nullptr;
    Rng rng_;
};

} // namespace qra

#endif // QRA_SIM_TRAJECTORY_SIMULATOR_HH
