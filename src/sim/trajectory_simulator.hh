/**
 * @file
 * Monte-Carlo (quantum trajectory) noisy simulator on the state-vector
 * backend. Each shot samples one Kraus branch per noise insertion,
 * performs real measurement collapses, and flips recorded bits per the
 * readout confusion model.
 *
 * Handles everything the density backend rejects (ancilla reuse,
 * mid-circuit reset after measurement) and scales to more qubits, at
 * the cost of sampling error ~ 1/sqrt(shots).
 *
 * Execution is plan-lowered by default: the circuit and noise model
 * are compiled once per run (or fetched from the active PlanCache)
 * into a kernels::TrajectoryPlan, so the shot loop dispatches
 * classified kernels and pre-built noise sites instead of
 * re-interpreting Operation structs. The legacy interpreter remains
 * available behind setUseLoweredPlan(false) for equivalence tests and
 * the perf harness.
 */

#ifndef QRA_SIM_TRAJECTORY_SIMULATOR_HH
#define QRA_SIM_TRAJECTORY_SIMULATOR_HH

#include <cstdint>
#include <memory>

#include "circuit/circuit.hh"
#include "circuit/schedule.hh"
#include "common/rng.hh"
#include "noise/noise_model.hh"
#include "sim/kernels/noise_plan.hh"
#include "sim/result.hh"
#include "sim/state_vector.hh"

namespace qra {

/** Stochastic noisy execution engine. */
class TrajectorySimulator
{
  public:
    explicit TrajectorySimulator(std::uint64_t seed = 7);

    /** Attach a noise model (nullptr or unset = ideal). */
    void setNoiseModel(const NoiseModel *noise) { noise_ = noise; }

    /**
     * Toggle plan-lowered execution (default on). The legacy
     * Operation interpreter consumes the identical RNG stream, so for
     * a fixed seed it reproduces the unfused plan bit-for-bit.
     */
    void setUseLoweredPlan(bool lowered) { usePlan_ = lowered; }

    /**
     * Execute @p shots independent trajectories.
     *
     * Shots whose PostSelect directive lands on a zero-probability
     * branch are discarded (and reflected in retainedFraction()).
     */
    Result run(const Circuit &circuit, std::size_t shots);

    /** Evolve a single noisy trajectory and return its final state. */
    StateVector evolveOne(const Circuit &circuit);

    void seed(std::uint64_t seed) { rng_.seed(seed); }

  private:
    /**
     * Apply one Kraus branch of @p channel, sampled with the Born
     * weights ||K_k psi||^2 (legacy interpreter path).
     */
    void sampleKraus(StateVector &state, const KrausChannel &channel,
                     const std::vector<Qubit> &qubits);

    /**
     * Copy-based branch sampling over raw operators — shared by the
     * legacy path and the plan path's multi-qubit fallback, so their
     * numerics can never diverge.
     */
    void sampleGeneralKraus(StateVector &state,
                            const std::vector<Matrix> &ops,
                            const std::vector<Qubit> &qubits);

    /** Sample and apply one branch of a pre-built noise site. */
    void sampleSite(const kernels::KrausSite &site, StateVector &state);

    /** Timed schedule of @p circuit (computed once per run). */
    std::vector<TimedMoment> scheduleFor(const Circuit &circuit) const;

    /** @return false if the shot must be discarded (post-selection). */
    bool runShot(const Circuit &circuit,
                 const std::vector<TimedMoment> &moments,
                 StateVector &state, std::uint64_t &register_value);

    /** Plan-lowered shot: replay pre-compiled entries and sites. */
    bool runShotPlan(const kernels::TrajectoryPlan &plan,
                     StateVector &state,
                     std::uint64_t &register_value);

    /** Compile (or fetch from the active PlanCache) the plan. */
    std::shared_ptr<const kernels::TrajectoryPlan>
    planFor(const Circuit &circuit) const;

    const NoiseModel *noise_ = nullptr;
    bool usePlan_ = true;
    Rng rng_;
};

} // namespace qra

#endif // QRA_SIM_TRAJECTORY_SIMULATOR_HH
