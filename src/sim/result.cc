#include "sim/result.hh"

#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"

namespace qra {

Result::Result(std::size_t num_clbits) : numClbits_(num_clbits)
{
}

void
Result::record(std::uint64_t outcome)
{
    record(outcome, 1);
}

void
Result::record(std::uint64_t outcome, std::size_t count)
{
    counts_[outcome] += count;
    shots_ += count;
}

std::map<std::string, std::size_t>
Result::counts() const
{
    std::map<std::string, std::size_t> out;
    for (const auto &[key, n] : counts_)
        out[toBitstring(key, numClbits_)] = n;
    return out;
}

std::size_t
Result::count(std::uint64_t outcome) const
{
    const auto it = counts_.find(outcome);
    return it == counts_.end() ? 0 : it->second;
}

std::size_t
Result::count(const std::string &bits) const
{
    return count(fromBitstring(bits));
}

double
Result::probability(std::uint64_t outcome) const
{
    if (shots_ == 0)
        return 0.0;
    return static_cast<double>(count(outcome)) /
           static_cast<double>(shots_);
}

double
Result::probability(const std::string &bits) const
{
    return probability(fromBitstring(bits));
}

std::uint64_t
Result::mostFrequent() const
{
    if (counts_.empty())
        QRA_FATAL("mostFrequent on an empty result");
    std::uint64_t best = 0;
    std::size_t best_count = 0;
    for (const auto &[key, n] : counts_) {
        if (n > best_count) {
            best = key;
            best_count = n;
        }
    }
    return best;
}

void
Result::setExactDistribution(std::map<std::uint64_t, double> dist)
{
    exact_ = std::move(dist);
}

void
Result::merge(const Result &other)
{
    if (numClbits_ != other.numClbits_)
        QRA_FATAL("cannot merge results with different register widths");
    // Pooled retained fraction: retention is kept/attempted, so the
    // merge must weight by *attempted* shots (recorded / fraction),
    // not recorded shots — total kept over total attempted. A side
    // with no recorded shots contributes no weight.
    auto attempted = [](std::size_t recorded, double fraction) {
        if (recorded == 0 || fraction <= 0.0)
            return 0.0;
        return static_cast<double>(recorded) / fraction;
    };
    const double total_attempted =
        attempted(shots_, retainedFraction_) +
        attempted(other.shots_, other.retainedFraction_);
    if (total_attempted > 0.0)
        retainedFraction_ =
            static_cast<double>(shots_ + other.shots_) /
            total_attempted;
    // Exact distributions are per-circuit, not per-shot, so merged
    // shards of the same job carry identical copies; adopt the other
    // side's when this result has none. Two *different* exact
    // distributions mean the caller is merging distinct jobs — keeping
    // either one would silently misdescribe the union, so refuse.
    if (!exact_ && other.exact_)
        exact_ = other.exact_;
    else if (exact_ && other.exact_ && *exact_ != *other.exact_)
        QRA_FATAL("cannot merge results with conflicting exact "
                  "distributions (distinct jobs?)");
    // Adaptive-run metadata: a merged result stopped early if any
    // part did, and its budget is the sum of the parts' budgets
    // (tracked only once either side carries explicit bookkeeping).
    if (shotsRequested_ != 0 || other.shotsRequested_ != 0)
        shotsRequested_ = shotsRequested() + other.shotsRequested();
    stoppedEarly_ = stoppedEarly_ || other.stoppedEarly_;
    if (other.cancelled_) {
        cancelled_ = true;
        if (cancelReason_.empty())
            cancelReason_ = other.cancelReason_;
    }
    for (const auto &[key, n] : other.counts_)
        record(key, n);
}

std::string
Result::str() const
{
    std::ostringstream os;
    for (const auto &[key, n] : counts_) {
        os << toBitstring(key, numClbits_) << "  " << n << "  "
           << formatPercent(probability(key)) << "\n";
    }
    return os.str();
}

} // namespace qra
