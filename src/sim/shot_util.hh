/**
 * @file
 * Small shared helpers for shot-loop execution strategies.
 */

#ifndef QRA_SIM_SHOT_UTIL_HH
#define QRA_SIM_SHOT_UTIL_HH

#include <cstddef>
#include <limits>

namespace qra {

/**
 * Retry budget for post-selection shot loops: 100 attempts per
 * requested shot plus slack, saturating instead of overflowing for
 * very large shot counts.
 */
inline std::size_t
postSelectAttemptBudget(std::size_t shots)
{
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    if (shots > (kMax - 1000) / 100)
        return kMax;
    return shots * 100 + 1000;
}

} // namespace qra

#endif // QRA_SIM_SHOT_UTIL_HH
