/**
 * @file
 * n-qubit density matrix with unitary evolution, Kraus channels, and
 * computational-basis measurement primitives.
 *
 * Intended for small registers (the experiments use 3-6 qubits); the
 * representation is a dense 2^n x 2^n matrix, practical up to ~10
 * qubits.
 */

#ifndef QRA_SIM_DENSITY_MATRIX_HH
#define QRA_SIM_DENSITY_MATRIX_HH

#include <vector>

#include "circuit/gate.hh"
#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {

class KrausChannel;

/** Mixed quantum state over a register of qubits. */
class DensityMatrix
{
  public:
    /** Initialise to the pure state |0...0><0...0|. */
    explicit DensityMatrix(std::size_t num_qubits);

    /** Initialise from a pure state's amplitudes. */
    static DensityMatrix fromPureState(const std::vector<Complex> &amps);

    std::size_t numQubits() const { return numQubits_; }
    std::size_t dim() const { return rho_.rows(); }

    const Matrix &matrix() const { return rho_; }

    /** rho <- U rho U^dagger with U acting on @p qubits. */
    void applyMatrix(const Matrix &u, const std::vector<Qubit> &qubits);

    /** Apply one unitary circuit operation. */
    void applyUnitary(const Operation &op);

    /** rho <- sum_k K_k rho K_k^dagger over @p qubits. */
    void applyKraus(const KrausChannel &channel,
                    const std::vector<Qubit> &qubits);

    /** Non-destructive P(qubit q == 1). */
    double probabilityOfOne(Qubit q) const;

    /**
     * Destroy coherence between the |0> and |1> subspaces of @p q
     * (the back-action of an unread computational-basis measurement).
     */
    void dephase(Qubit q);

    /**
     * Project qubit @p q onto @p outcome and renormalise.
     * @return Probability of the selected branch.
     * @throws SimulationError if the branch has (near-)zero weight.
     */
    double postSelect(Qubit q, int outcome);

    /** Reset channel on one qubit: rho -> |0><0| (x) tr_q contents. */
    void resetQubit(Qubit q);

    /** Diagonal of rho: probability of each basis state. */
    std::vector<double> probabilities() const;

    /** Tr(rho^2). */
    double purity() const;

    /** <psi| rho |psi>. */
    double fidelityWithPure(const std::vector<Complex> &psi) const;

    /** 2x2 reduced state of one qubit. */
    Matrix reducedQubitDensity(Qubit q) const;

    /** Tr(rho); should be 1 up to numerical error. */
    double trace() const;

  private:
    void checkQubit(Qubit q) const;

    /** rho <- A rho with local matrix A (columns transformed). */
    void leftMultiply(const Matrix &a, const std::vector<Qubit> &qubits);

    /** rho <- rho A^dagger with local matrix A (rows transformed). */
    void rightMultiplyAdjoint(const Matrix &a,
                              const std::vector<Qubit> &qubits);

    std::size_t numQubits_;
    Matrix rho_;
};

} // namespace qra

#endif // QRA_SIM_DENSITY_MATRIX_HH
