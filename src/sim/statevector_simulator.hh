/**
 * @file
 * Ideal (noiseless) shot-based simulator on the StateVector backend.
 *
 * Two execution strategies:
 *  - If every measurement is terminal (no gate touches a measured
 *    qubit afterwards) and there is no Reset, the circuit is evolved
 *    once and outcomes are sampled from the final distribution.
 *  - Otherwise each shot is executed independently (mid-circuit
 *    measurement, reset, ancilla reuse all work).
 *
 * PostSelect directives condition the run: trajectories in the
 * discarded branch are dropped and the retained fraction is reported
 * on the Result (mirroring QUIRK's post-selection display).
 */

#ifndef QRA_SIM_STATEVECTOR_SIMULATOR_HH
#define QRA_SIM_STATEVECTOR_SIMULATOR_HH

#include <cstdint>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "sim/result.hh"
#include "sim/state_vector.hh"

namespace qra {

/** Ideal state-vector execution engine. */
class StatevectorSimulator
{
  public:
    /** @param seed Seed for measurement sampling. */
    explicit StatevectorSimulator(std::uint64_t seed = 7);

    /** Execute @p circuit for @p shots shots and collect counts. */
    Result run(const Circuit &circuit, std::size_t shots);

    /**
     * Evolve the circuit once, skipping Measure instructions but
     * honouring PostSelect, and return the final state. This is the
     * QUIRK-style inspection mode used by the paper's Figs. 6-7.
     */
    StateVector finalState(const Circuit &circuit);

    /**
     * Evolve one trajectory with real measurement collapses and
     * return the final state (outcomes are discarded).
     */
    StateVector evolveWithMeasurements(const Circuit &circuit);

    /** Reseed the internal generator. */
    void seed(std::uint64_t seed) { rng_.seed(seed); }

  private:
    /** True if the fast sample-at-end strategy is valid. */
    static bool measurementsAreTerminal(const Circuit &circuit);

    Result runSampled(const Circuit &circuit, std::size_t shots);
    Result runPerShot(const Circuit &circuit, std::size_t shots);

    Rng rng_;
};

} // namespace qra

#endif // QRA_SIM_STATEVECTOR_SIMULATOR_HH
