#include "sim/state_vector.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "math/linalg.hh"
#include "sim/kernel.hh"

namespace qra {

StateVector::StateVector(std::size_t num_qubits)
    : numQubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Complex{0.0, 0.0})
{
    if (num_qubits == 0 || num_qubits > 24)
        throw SimulationError("state vector supports 1..24 qubits");
    amps_[0] = 1.0;
}

StateVector
StateVector::fromAmplitudes(std::vector<Complex> amps)
{
    const std::size_t dim = amps.size();
    if (dim < 2 || (dim & (dim - 1)) != 0)
        throw SimulationError("amplitude count must be a power of two");

    std::size_t num_qubits = 0;
    while ((std::size_t{1} << num_qubits) < dim)
        ++num_qubits;

    StateVector sv(num_qubits);
    linalg::normalize(amps);
    sv.amps_ = std::move(amps);
    return sv;
}

void
StateVector::resetAll()
{
    std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

void
StateVector::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw IndexError("qubit index " + std::to_string(q) +
                         " out of range");
}

void
StateVector::applyMatrix(const Matrix &u, const std::vector<Qubit> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t block = std::size_t{1} << k;
    if (u.rows() != block || u.cols() != block)
        throw SimulationError("gate matrix size does not match qubit "
                              "operand count");
    for (Qubit q : qubits)
        checkQubit(q);

    kernel::applyMatrix(amps_, u, qubits);
}

void
StateVector::applyUnitary(const Operation &op)
{
    if (!opIsUnitary(op.kind))
        throw SimulationError(std::string("applyUnitary on '") +
                              opName(op.kind) + "'");

    // Special-case the common controlled gates: permutations/phases
    // touch half the amplitudes the generic path does.
    switch (op.kind) {
      case OpKind::I:
        return;
      case OpKind::X:
      {
        const std::uint64_t bit = std::uint64_t{1} << op.qubits[0];
        for (std::uint64_t i = 0; i < amps_.size(); ++i)
            if (!(i & bit))
                std::swap(amps_[i], amps_[i | bit]);
        return;
      }
      case OpKind::Z:
      {
        const std::uint64_t bit = std::uint64_t{1} << op.qubits[0];
        for (std::uint64_t i = 0; i < amps_.size(); ++i)
            if (i & bit)
                amps_[i] = -amps_[i];
        return;
      }
      case OpKind::CX:
      {
        checkQubit(op.qubits[0]);
        checkQubit(op.qubits[1]);
        const std::uint64_t cbit = std::uint64_t{1} << op.qubits[0];
        const std::uint64_t tbit = std::uint64_t{1} << op.qubits[1];
        for (std::uint64_t i = 0; i < amps_.size(); ++i)
            if ((i & cbit) && !(i & tbit))
                std::swap(amps_[i], amps_[i | tbit]);
        return;
      }
      case OpKind::CZ:
      {
        const std::uint64_t mask =
            (std::uint64_t{1} << op.qubits[0]) |
            (std::uint64_t{1} << op.qubits[1]);
        for (std::uint64_t i = 0; i < amps_.size(); ++i)
            if ((i & mask) == mask)
                amps_[i] = -amps_[i];
        return;
      }
      default:
        applyMatrix(op.matrix(), op.qubits);
    }
}

int
StateVector::measure(Qubit q, Rng &rng)
{
    checkQubit(q);
    const double p1 = probabilityOfOne(q);
    const int outcome = rng.uniform() < p1 ? 1 : 0;
    const double p = outcome ? p1 : 1.0 - p1;
    if (p < 1e-15)
        throw SimulationError("measurement collapsed onto a zero-"
                              "probability branch (numerical issue)");

    const std::uint64_t bit = std::uint64_t{1} << q;
    const double scale = 1.0 / std::sqrt(p);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const bool is_one = (i & bit) != 0;
        if (is_one == (outcome == 1))
            amps_[i] *= scale;
        else
            amps_[i] = 0.0;
    }
    return outcome;
}

double
StateVector::postSelect(Qubit q, int outcome)
{
    checkQubit(q);
    const double p1 = probabilityOfOne(q);
    const double p = outcome ? p1 : 1.0 - p1;
    if (p < 1e-12)
        throw SimulationError(
            "post-selection onto a zero-probability branch (qubit " +
            std::to_string(q) + " == " + std::to_string(outcome) + ")");

    const std::uint64_t bit = std::uint64_t{1} << q;
    const double scale = 1.0 / std::sqrt(p);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const bool is_one = (i & bit) != 0;
        if (is_one == (outcome == 1))
            amps_[i] *= scale;
        else
            amps_[i] = 0.0;
    }
    return p;
}

double
StateVector::probabilityOfOne(Qubit q) const
{
    checkQubit(q);
    const std::uint64_t bit = std::uint64_t{1} << q;
    double p1 = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i)
        if (i & bit)
            p1 += std::norm(amps_[i]);
    return std::min(1.0, p1);
}

std::vector<double>
StateVector::probabilities() const
{
    std::vector<double> probs(amps_.size());
    for (std::size_t i = 0; i < amps_.size(); ++i)
        probs[i] = std::norm(amps_[i]);
    return probs;
}

std::vector<double>
StateVector::marginalProbabilities(const std::vector<Qubit> &qubits) const
{
    for (Qubit q : qubits)
        checkQubit(q);
    std::vector<double> marginal(std::size_t{1} << qubits.size(), 0.0);
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        const double p = std::norm(amps_[i]);
        if (p == 0.0)
            continue;
        std::uint64_t key = 0;
        for (std::size_t j = 0; j < qubits.size(); ++j)
            if ((i >> qubits[j]) & 1)
                key |= std::uint64_t{1} << j;
        marginal[key] += p;
    }
    return marginal;
}

BasisIndex
StateVector::sample(Rng &rng) const
{
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        if (u < acc)
            return i;
    }
    return amps_.size() - 1;
}

void
StateVector::resetQubit(Qubit q, Rng &rng)
{
    const int outcome = measure(q, rng);
    if (outcome == 1)
        applyUnitary({.kind = OpKind::X, .qubits = {q}});
}

double
StateVector::expectationZ(Qubit q) const
{
    return 1.0 - 2.0 * probabilityOfOne(q);
}

Matrix
StateVector::reducedQubitDensity(Qubit q) const
{
    checkQubit(q);
    const std::uint64_t bit = std::uint64_t{1} << q;
    Complex r00{0.0, 0.0}, r01{0.0, 0.0}, r11{0.0, 0.0};
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        if (i & bit) {
            r11 += amps_[i] * std::conj(amps_[i]);
        } else {
            r00 += amps_[i] * std::conj(amps_[i]);
            r01 += amps_[i] * std::conj(amps_[i | bit]);
        }
    }
    return Matrix{{r00, r01}, {std::conj(r01), r11}};
}

double
StateVector::qubitPurity(Qubit q) const
{
    return linalg::purity(reducedQubitDensity(q));
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    if (numQubits_ != other.numQubits_)
        throw SimulationError("fidelity between different-size states");
    return linalg::stateFidelity(amps_, other.amps_);
}

double
StateVector::norm() const
{
    return linalg::norm(amps_);
}

} // namespace qra
