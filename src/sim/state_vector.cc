#include "sim/state_vector.hh"

#include <algorithm>
#include <cmath>

#include "common/error.hh"
#include "math/linalg.hh"
#include "sim/kernels/kernels.hh"
#include "sim/kernels/plan.hh"

namespace qra {

StateVector::StateVector(std::size_t num_qubits)
    : numQubits_(num_qubits),
      amps_(std::size_t{1} << num_qubits, Complex{0.0, 0.0})
{
    if (num_qubits == 0 || num_qubits > 24)
        throw SimulationError("state vector supports 1..24 qubits");
    amps_[0] = 1.0;
}

StateVector
StateVector::fromAmplitudes(std::vector<Complex> amps)
{
    const std::size_t dim = amps.size();
    if (dim < 2 || (dim & (dim - 1)) != 0)
        throw SimulationError("amplitude count must be a power of two");

    std::size_t num_qubits = 0;
    while ((std::size_t{1} << num_qubits) < dim)
        ++num_qubits;

    StateVector sv(num_qubits);
    linalg::normalize(amps);
    sv.amps_ = std::move(amps);
    return sv;
}

void
StateVector::resetAll()
{
    std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
    amps_[0] = 1.0;
}

void
StateVector::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw IndexError("qubit index " + std::to_string(q) +
                         " out of range");
}

void
StateVector::applyMatrix(const Matrix &u, const std::vector<Qubit> &qubits)
{
    const std::size_t k = qubits.size();
    const std::size_t block = std::size_t{1} << k;
    if (u.rows() != block || u.cols() != block)
        throw SimulationError("gate matrix size does not match qubit "
                              "operand count");
    for (Qubit q : qubits)
        checkQubit(q);

    kernels::applyMatrix(amps_, u, qubits);
}

void
StateVector::applyUnitary(const Operation &op)
{
    if (!opIsUnitary(op.kind))
        throw SimulationError(std::string("applyUnitary on '") +
                              opName(op.kind) + "'");
    applyKernel(kernels::lowerOperation(op));
}

void
StateVector::applyKernel(const kernels::PlanEntry &entry)
{
    using kernels::KernelKind;
    Complex *amps = amps_.data();
    const std::uint64_t n = amps_.size();
    switch (entry.kind) {
      case KernelKind::Identity:
        checkQubit(entry.q0);
        return;
      case KernelKind::Diagonal1q:
        checkQubit(entry.q0);
        kernels::applyDiagonal1q(amps, n, entry.q0, entry.m[0],
                                 entry.m[3]);
        return;
      case KernelKind::AntiDiagonal1q:
        checkQubit(entry.q0);
        kernels::applyAntiDiagonal1q(amps, n, entry.q0, entry.m[1],
                                     entry.m[2], entry.traversal);
        return;
      case KernelKind::General1q:
        checkQubit(entry.q0);
        kernels::applyGeneral1q(amps, n, entry.q0, entry.m[0],
                                entry.m[1], entry.m[2], entry.m[3],
                                entry.traversal);
        return;
      case KernelKind::PauliX:
        checkQubit(entry.q0);
        kernels::applyX(amps, n, entry.q0);
        return;
      case KernelKind::ControlledX:
        checkQubit(entry.q0);
        checkQubit(entry.q1);
        kernels::applyCX(amps, n, entry.q0, entry.q1);
        return;
      case KernelKind::Controlled1q:
        checkQubit(entry.q0);
        checkQubit(entry.q1);
        kernels::applyControlled1q(amps, n, entry.q0, entry.q1,
                                   entry.m[0], entry.m[1], entry.m[2],
                                   entry.m[3], entry.traversal);
        return;
      case KernelKind::PhaseOnMask:
        if (entry.mask >> numQubits_)
            throw IndexError("phase mask addresses a qubit out of "
                             "range");
        kernels::applyPhaseOnMask(amps, n, entry.mask, entry.phase);
        return;
      case KernelKind::SwapQubits:
        checkQubit(entry.q0);
        checkQubit(entry.q1);
        kernels::applySwap(amps, n, entry.q0, entry.q1);
        return;
      case KernelKind::Toffoli:
        checkQubit(entry.q0);
        checkQubit(entry.q1);
        checkQubit(entry.q2);
        kernels::applyCCX(amps, n, entry.q0, entry.q1, entry.q2);
        return;
      case KernelKind::General2q:
        checkQubit(entry.q0);
        checkQubit(entry.q1);
        kernels::applyGeneral2q(amps, n, entry.q0, entry.q1,
                                entry.dense, entry.traversal);
        return;
      case KernelKind::GenericK:
        for (Qubit q : entry.qubits)
            checkQubit(q);
        kernels::applyGenericK(amps, n, entry.dense, entry.qubits);
        return;
      case KernelKind::Measure:
      case KernelKind::ResetQ:
      case KernelKind::PostSelectQ:
      case KernelKind::SampleKraus:
        break;
    }
    throw SimulationError("applyKernel on a non-unitary plan entry");
}

void
StateVector::applyKrausBranch(const Matrix &k,
                              const std::vector<Qubit> &qubits,
                              double weight)
{
    if (weight < 1e-30)
        throw SimulationError("Kraus branch sampled with (near-)zero "
                              "Born weight (numerical issue)");
    applyMatrix(k, qubits);
    kernels::scaleAll(amps_.data(), amps_.size(),
                      1.0 / std::sqrt(weight));
}

int
StateVector::measure(Qubit q, Rng &rng)
{
    checkQubit(q);
    const double p1 = probabilityOfOne(q);
    const int outcome = rng.uniform() < p1 ? 1 : 0;
    const double p = outcome ? p1 : 1.0 - p1;
    if (p < 1e-15)
        throw SimulationError("measurement collapsed onto a zero-"
                              "probability branch (numerical issue)");
    kernels::collapseQubit(amps_.data(), amps_.size(), q, outcome,
                           1.0 / std::sqrt(p));
    return outcome;
}

double
StateVector::postSelect(Qubit q, int outcome)
{
    checkQubit(q);
    const double p1 = probabilityOfOne(q);
    const double p = outcome ? p1 : 1.0 - p1;
    if (p < 1e-12)
        throw SimulationError(
            "post-selection onto a zero-probability branch (qubit " +
            std::to_string(q) + " == " + std::to_string(outcome) + ")");
    kernels::collapseQubit(amps_.data(), amps_.size(), q, outcome,
                           1.0 / std::sqrt(p));
    return p;
}

double
StateVector::probabilityOfOne(Qubit q) const
{
    checkQubit(q);
    const std::uint64_t bit = std::uint64_t{1} << q;
    return std::min(
        1.0, kernels::normSquaredOnMask(amps_.data(), amps_.size(),
                                        bit, bit));
}

std::vector<double>
StateVector::probabilities(double *total) const
{
    std::vector<double> probs(amps_.size());
    const double sum = kernels::computeProbabilities(
        amps_.data(), amps_.size(), probs.data());
    if (total != nullptr)
        *total = sum;
    return probs;
}

std::vector<double>
StateVector::marginalProbabilities(const std::vector<Qubit> &qubits) const
{
    for (Qubit q : qubits)
        checkQubit(q);
    return kernels::marginalProbabilities(amps_.data(), amps_.size(),
                                          qubits);
}

BasisIndex
StateVector::sample(Rng &rng) const
{
    // One-off draw: a linear cumulative scan. Repeated sampling
    // should build a kernels::AliasTable from probabilities() instead
    // (O(1) per draw); runSampled does.
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        acc += std::norm(amps_[i]);
        if (u < acc)
            return i;
    }
    return amps_.size() - 1;
}

void
StateVector::resetQubit(Qubit q, Rng &rng)
{
    const int outcome = measure(q, rng);
    if (outcome == 1)
        kernels::applyX(amps_.data(), amps_.size(), q);
}

double
StateVector::expectationZ(Qubit q) const
{
    return 1.0 - 2.0 * probabilityOfOne(q);
}

Matrix
StateVector::reducedQubitDensity(Qubit q) const
{
    checkQubit(q);
    const std::uint64_t bit = std::uint64_t{1} << q;
    Complex r00{0.0, 0.0}, r01{0.0, 0.0}, r11{0.0, 0.0};
    for (std::uint64_t i = 0; i < amps_.size(); ++i) {
        if (i & bit) {
            r11 += amps_[i] * std::conj(amps_[i]);
        } else {
            r00 += amps_[i] * std::conj(amps_[i]);
            r01 += amps_[i] * std::conj(amps_[i | bit]);
        }
    }
    return Matrix{{r00, r01}, {std::conj(r01), r11}};
}

double
StateVector::qubitPurity(Qubit q) const
{
    return linalg::purity(reducedQubitDensity(q));
}

double
StateVector::fidelityWith(const StateVector &other) const
{
    if (numQubits_ != other.numQubits_)
        throw SimulationError("fidelity between different-size states");
    return linalg::stateFidelity(amps_, other.amps_);
}

double
StateVector::norm() const
{
    return std::sqrt(kernels::normSquaredOnMask(amps_.data(),
                                                amps_.size(), 0, 0));
}

} // namespace qra
