#include "sim/density_simulator.hh"

#include <set>

#include "circuit/schedule.hh"
#include "common/error.hh"

namespace qra {

DensityMatrixSimulator::DensityMatrixSimulator(std::uint64_t seed)
    : rng_(seed)
{
}

DensityMatrixSimulator::Execution
DensityMatrixSimulator::execute(const Circuit &circuit)
{
    Execution exec(circuit.numQubits());
    std::set<Qubit> measured;

    const bool noisy = noise_ != nullptr && noise_->enabled();

    auto duration = [&](const Operation &op) {
        return noisy ? noise_->opDuration(op) : 0.0;
    };
    const std::vector<TimedMoment> moments =
        computeTimedMoments(circuit, duration);

    auto apply_op = [&](const Operation &op) {
        for (Qubit q : op.qubits) {
            if (measured.count(q))
                throw SimulationError(
                    "density backend: qubit " + std::to_string(q) +
                    " is used after measurement; use the trajectory "
                    "backend for ancilla reuse");
        }

        switch (op.kind) {
          case OpKind::Measure:
            exec.state.dephase(op.qubits[0]);
            exec.wiring.emplace_back(op.qubits[0], *op.clbit);
            measured.insert(op.qubits[0]);
            return;
          case OpKind::Barrier:
            return;
          case OpKind::Reset:
            exec.state.resetQubit(op.qubits[0]);
            break;
          case OpKind::PostSelect:
            exec.retained *= exec.state.postSelect(op.qubits[0],
                                                   op.postselectValue);
            return;
          default:
            exec.state.applyUnitary(op);
            break;
        }

        if (noisy) {
            for (const auto &applied : noise_->channelsFor(op))
                exec.state.applyKraus(applied.channel, applied.qubits);
        }
    };

    for (const TimedMoment &moment : moments) {
        for (std::size_t idx : moment.opIndices)
            apply_op(circuit.ops()[idx]);

        if (noisy && moment.durationNs > 0.0) {
            for (Qubit q = 0; q < circuit.numQubits(); ++q) {
                // Measured qubits are classical records; freezing them
                // preserves the recorded outcome statistics.
                if (measured.count(q))
                    continue;
                if (auto relax =
                        noise_->relaxationFor(q, moment.durationNs))
                    exec.state.applyKraus(*relax, {q});
            }
        }
    }
    return exec;
}

std::map<std::uint64_t, double>
DensityMatrixSimulator::exactDistribution(const Circuit &circuit)
{
    Execution exec = execute(circuit);

    // Joint distribution over the classical register from the final
    // diagonal: unmeasured qubits are marginalised away.
    const std::vector<double> probs = exec.state.probabilities();
    std::map<std::uint64_t, double> dist;
    for (std::uint64_t basis = 0; basis < probs.size(); ++basis) {
        if (probs[basis] <= 0.0)
            continue;
        std::uint64_t reg = 0;
        for (const auto &[q, c] : exec.wiring) {
            if ((basis >> q) & 1)
                reg |= std::uint64_t{1} << c;
            else
                reg &= ~(std::uint64_t{1} << c);
        }
        dist[reg] += probs[basis];
    }

    // Fold per-qubit readout confusion into the register distribution.
    if (noise_ != nullptr && noise_->enabled()) {
        for (const auto &[q, c] : exec.wiring) {
            const ReadoutError *ro = noise_->readoutFor(q);
            if (ro == nullptr)
                continue;
            std::map<std::uint64_t, double> flipped;
            const std::uint64_t bit = std::uint64_t{1} << c;
            for (const auto &[reg, p] : dist) {
                const int true_bit = (reg & bit) ? 1 : 0;
                for (int read = 0; read < 2; ++read) {
                    const double weight = ro->confusion(true_bit, read);
                    if (weight <= 0.0)
                        continue;
                    const std::uint64_t out =
                        read ? (reg | bit) : (reg & ~bit);
                    flipped[out] += p * weight;
                }
            }
            dist = std::move(flipped);
        }
    }
    return dist;
}

Result
DensityMatrixSimulator::run(const Circuit &circuit, std::size_t shots)
{
    const std::map<std::uint64_t, double> dist =
        exactDistribution(circuit);

    Result result(circuit.numClbits());
    result.setExactDistribution(dist);

    // Sample counts from the exact distribution.
    std::vector<std::uint64_t> keys;
    std::vector<double> probs;
    keys.reserve(dist.size());
    probs.reserve(dist.size());
    for (const auto &[reg, p] : dist) {
        keys.push_back(reg);
        probs.push_back(p);
    }
    for (std::size_t s = 0; s < shots; ++s)
        result.record(keys[sampleDiscrete(probs, rng_)]);
    return result;
}

DensityMatrix
DensityMatrixSimulator::finalState(const Circuit &circuit)
{
    return execute(circuit).state;
}

} // namespace qra
