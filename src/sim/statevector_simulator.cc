#include "sim/statevector_simulator.hh"

#include <set>

#include "common/error.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/plan.hh"
#include "sim/shot_util.hh"

namespace qra {

StatevectorSimulator::StatevectorSimulator(std::uint64_t seed)
    : rng_(seed)
{
}

bool
StatevectorSimulator::measurementsAreTerminal(const Circuit &circuit)
{
    std::set<Qubit> measured;
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Reset:
            return false;
          case OpKind::Measure:
            measured.insert(op.qubits[0]);
            break;
          case OpKind::Barrier:
            break;
          default:
            for (Qubit q : op.qubits)
                if (measured.count(q))
                    return false;
        }
    }
    return true;
}

Result
StatevectorSimulator::run(const Circuit &circuit, std::size_t shots)
{
    if (measurementsAreTerminal(circuit))
        return runSampled(circuit, shots);
    return runPerShot(circuit, shots);
}

Result
StatevectorSimulator::runSampled(const Circuit &circuit,
                                 std::size_t shots)
{
    StateVector state(circuit.numQubits());
    double retained = 1.0;

    // Lower once; all measurements are terminal, so the plan is
    // unitaries + post-selections followed by Measure markers.
    const kernels::ExecutablePlan plan =
        kernels::ExecutablePlan::compile(circuit);

    // Qubit -> clbit wiring of the (terminal) measurements.
    std::vector<std::pair<Qubit, Clbit>> wiring;
    for (const kernels::PlanEntry &entry : plan.entries()) {
        switch (entry.kind) {
          case kernels::KernelKind::Measure:
            wiring.emplace_back(entry.q0, entry.clbit);
            break;
          case kernels::KernelKind::PostSelectQ:
            retained *=
                state.postSelect(entry.q0, entry.postselectValue);
            break;
          case kernels::KernelKind::ResetQ:
            // measurementsAreTerminal rejects Reset circuits.
            throw SimulationError("reset in sampled execution");
          default:
            state.applyKernel(entry);
        }
    }

    Result result(circuit.numClbits());
    result.setRetainedFraction(retained);
    if (wiring.empty()) {
        // No measurements: report the all-zero register for each shot.
        result.record(0, shots);
        return result;
    }

    // Measured qubits, deduplicated: the marginal distribution is
    // over one bit per distinct qubit, and each wiring entry maps its
    // qubit's bit to a clbit.
    std::vector<Qubit> measured;
    std::vector<std::pair<std::size_t, Clbit>> bit_wiring;
    for (const auto &[q, c] : wiring) {
        std::size_t j = 0;
        while (j < measured.size() && measured[j] != q)
            ++j;
        if (j == measured.size())
            measured.push_back(q);
        bit_wiring.emplace_back(j, c);
    }

    // Build the outcome distribution once, then draw shots in O(1)
    // each from the alias table instead of scanning 2^n amplitudes
    // per shot. measureAll-style circuits (every qubit, in wire
    // order) skip the scatter and use the parallel elementwise
    // probability kernel; true marginals fall back to one serial
    // scan, amortised over all shots.
    bool identity_marginal = measured.size() == state.numQubits();
    for (std::size_t j = 0; identity_marginal && j < measured.size();
         ++j)
        identity_marginal = measured[j] == j;
    const kernels::AliasTable table(
        identity_marginal ? state.probabilities()
                          : state.marginalProbabilities(measured));
    for (std::size_t s = 0; s < shots; ++s) {
        const std::uint64_t key = table.sample(rng_);
        std::uint64_t reg = 0;
        for (const auto &[j, c] : bit_wiring) {
            if ((key >> j) & 1)
                reg |= std::uint64_t{1} << c;
            else
                reg &= ~(std::uint64_t{1} << c);
        }
        result.record(reg);
    }
    return result;
}

Result
StatevectorSimulator::runPerShot(const Circuit &circuit,
                                 std::size_t shots)
{
    Result result(circuit.numClbits());
    std::size_t attempted = 0;
    std::size_t kept = 0;

    // Lower (and fuse) once; every shot replays the same plan.
    const kernels::ExecutablePlan plan =
        kernels::ExecutablePlan::compile(circuit);

    // Post-selection in per-shot mode conditions the ensemble: a shot
    // survives each PostSelect with the branch probability, otherwise
    // it is discarded and re-attempted (same semantics as the
    // trajectory backend).
    const std::size_t max_attempts = postSelectAttemptBudget(shots);
    while (kept < shots && attempted < max_attempts) {
        ++attempted;
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        bool discarded = false;

        for (const kernels::PlanEntry &entry : plan.entries()) {
            switch (entry.kind) {
              case kernels::KernelKind::Measure:
              {
                const int outcome = state.measure(entry.q0, rng_);
                if (outcome)
                    reg |= std::uint64_t{1} << entry.clbit;
                else
                    reg &= ~(std::uint64_t{1} << entry.clbit);
                break;
              }
              case kernels::KernelKind::ResetQ:
                state.resetQubit(entry.q0, rng_);
                break;
              case kernels::KernelKind::PostSelectQ:
              {
                const double p1 = state.probabilityOfOne(entry.q0);
                const double p =
                    entry.postselectValue ? p1 : 1.0 - p1;
                if (p < 1e-12 || rng_.uniform() >= p) {
                    discarded = true;
                } else {
                    state.postSelect(entry.q0, entry.postselectValue);
                }
                break;
              }
              default:
                state.applyKernel(entry);
            }
            if (discarded)
                break;
        }
        if (discarded)
            continue;
        result.record(reg);
        ++kept;
    }
    if (kept < shots)
        throw SimulationError("post-selection discarded nearly every "
                              "shot; circuit is inconsistent");

    result.setRetainedFraction(static_cast<double>(kept) /
                               static_cast<double>(attempted));
    return result;
}

StateVector
StatevectorSimulator::finalState(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    const kernels::ExecutablePlan plan =
        kernels::ExecutablePlan::compile(circuit);
    for (const kernels::PlanEntry &entry : plan.entries()) {
        switch (entry.kind) {
          case kernels::KernelKind::Measure:
            break;
          case kernels::KernelKind::ResetQ:
            state.resetQubit(entry.q0, rng_);
            break;
          case kernels::KernelKind::PostSelectQ:
            state.postSelect(entry.q0, entry.postselectValue);
            break;
          default:
            state.applyKernel(entry);
        }
    }
    return state;
}

StateVector
StatevectorSimulator::evolveWithMeasurements(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    const kernels::ExecutablePlan plan =
        kernels::ExecutablePlan::compile(circuit);
    for (const kernels::PlanEntry &entry : plan.entries()) {
        switch (entry.kind) {
          case kernels::KernelKind::Measure:
            state.measure(entry.q0, rng_);
            break;
          case kernels::KernelKind::ResetQ:
            state.resetQubit(entry.q0, rng_);
            break;
          case kernels::KernelKind::PostSelectQ:
            state.postSelect(entry.q0, entry.postselectValue);
            break;
          default:
            state.applyKernel(entry);
        }
    }
    return state;
}

} // namespace qra
