#include "sim/statevector_simulator.hh"

#include <set>

#include "common/error.hh"

namespace qra {

StatevectorSimulator::StatevectorSimulator(std::uint64_t seed)
    : rng_(seed)
{
}

bool
StatevectorSimulator::measurementsAreTerminal(const Circuit &circuit)
{
    std::set<Qubit> measured;
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Reset:
            return false;
          case OpKind::Measure:
            measured.insert(op.qubits[0]);
            break;
          case OpKind::Barrier:
            break;
          default:
            for (Qubit q : op.qubits)
                if (measured.count(q))
                    return false;
        }
    }
    return true;
}

Result
StatevectorSimulator::run(const Circuit &circuit, std::size_t shots)
{
    if (measurementsAreTerminal(circuit))
        return runSampled(circuit, shots);
    return runPerShot(circuit, shots);
}

Result
StatevectorSimulator::runSampled(const Circuit &circuit,
                                 std::size_t shots)
{
    StateVector state(circuit.numQubits());
    double retained = 1.0;

    // Qubit -> clbit wiring of the (terminal) measurements.
    std::vector<std::pair<Qubit, Clbit>> wiring;
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Measure:
            wiring.emplace_back(op.qubits[0], *op.clbit);
            break;
          case OpKind::Barrier:
            break;
          case OpKind::PostSelect:
            retained *= state.postSelect(op.qubits[0],
                                         op.postselectValue);
            break;
          default:
            state.applyUnitary(op);
        }
    }

    Result result(circuit.numClbits());
    result.setRetainedFraction(retained);
    if (wiring.empty()) {
        // No measurements: report the all-zero register for each shot.
        result.record(0, shots);
        return result;
    }

    for (std::size_t s = 0; s < shots; ++s) {
        const BasisIndex basis = state.sample(rng_);
        std::uint64_t reg = 0;
        for (const auto &[q, c] : wiring) {
            if ((basis >> q) & 1)
                reg |= std::uint64_t{1} << c;
            else
                reg &= ~(std::uint64_t{1} << c);
        }
        result.record(reg);
    }
    return result;
}

Result
StatevectorSimulator::runPerShot(const Circuit &circuit,
                                 std::size_t shots)
{
    Result result(circuit.numClbits());
    std::size_t attempted = 0;
    std::size_t kept = 0;

    // Post-selection in per-shot mode conditions the ensemble: a shot
    // survives each PostSelect with the branch probability, otherwise
    // it is discarded and re-attempted (same semantics as the
    // trajectory backend).
    const std::size_t max_attempts = shots * 100 + 1000;
    while (kept < shots && attempted < max_attempts) {
        ++attempted;
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        bool discarded = false;

        for (const Operation &op : circuit.ops()) {
            switch (op.kind) {
              case OpKind::Measure:
              {
                const int outcome = state.measure(op.qubits[0], rng_);
                if (outcome)
                    reg |= std::uint64_t{1} << *op.clbit;
                else
                    reg &= ~(std::uint64_t{1} << *op.clbit);
                break;
              }
              case OpKind::Reset:
                state.resetQubit(op.qubits[0], rng_);
                break;
              case OpKind::Barrier:
                break;
              case OpKind::PostSelect:
              {
                const double p1 =
                    state.probabilityOfOne(op.qubits[0]);
                const double p =
                    op.postselectValue ? p1 : 1.0 - p1;
                if (p < 1e-12 || rng_.uniform() >= p) {
                    discarded = true;
                } else {
                    state.postSelect(op.qubits[0],
                                     op.postselectValue);
                }
                break;
              }
              default:
                state.applyUnitary(op);
            }
            if (discarded)
                break;
        }
        if (discarded)
            continue;
        result.record(reg);
        ++kept;
    }
    if (kept < shots)
        throw SimulationError("post-selection discarded nearly every "
                              "shot; circuit is inconsistent");

    result.setRetainedFraction(static_cast<double>(kept) /
                               static_cast<double>(attempted));
    return result;
}

StateVector
StatevectorSimulator::finalState(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Measure:
          case OpKind::Barrier:
            break;
          case OpKind::Reset:
            state.resetQubit(op.qubits[0], rng_);
            break;
          case OpKind::PostSelect:
            state.postSelect(op.qubits[0], op.postselectValue);
            break;
          default:
            state.applyUnitary(op);
        }
    }
    return state;
}

StateVector
StatevectorSimulator::evolveWithMeasurements(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Measure:
            state.measure(op.qubits[0], rng_);
            break;
          case OpKind::Barrier:
            break;
          case OpKind::Reset:
            state.resetQubit(op.qubits[0], rng_);
            break;
          case OpKind::PostSelect:
            state.postSelect(op.qubits[0], op.postselectValue);
            break;
          default:
            state.applyUnitary(op);
        }
    }
    return state;
}

} // namespace qra
