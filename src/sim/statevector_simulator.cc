#include "sim/statevector_simulator.hh"

#include <set>

#include "common/error.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/kernels/alias_table.hh"
#include "sim/kernels/plan.hh"
#include "sim/kernels/plan_cache.hh"
#include "sim/shot_util.hh"

namespace qra {

namespace {

/** Registered-once handles for the sampling-path metrics. */
struct SimMetrics
{
    obs::CounterHandle sampledShots;
    obs::CounterHandle perShotShots;
    obs::GaugeHandle sampledShotsPerSec;
};

const SimMetrics &
simMetrics()
{
    static const SimMetrics metrics = []() {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        SimMetrics m;
        m.sampledShots = reg.counter("sim.sampled.shots");
        m.perShotShots = reg.counter("sim.pershot.shots");
        m.sampledShotsPerSec = reg.gauge("sim.sampled.shots_per_sec");
        return m;
    }();
    return metrics;
}

/** Compile @p circuit, through the active PlanCache when one is. */
std::shared_ptr<const kernels::ExecutablePlan>
planFor(const Circuit &circuit)
{
    if (kernels::PlanCache *cache = kernels::currentPlanCache())
        return cache->plan(circuit, kernels::currentFusionLevel());
    return std::make_shared<const kernels::ExecutablePlan>(
        kernels::ExecutablePlan::compile(circuit));
}

/**
 * One-time work of sampled execution: evolve the state, derive the
 * measured-qubit marginal and its clbit wiring, and build the alias
 * table. Cached across shards and jobs via the PlanCache.
 */
std::shared_ptr<const kernels::SampledDistribution>
buildSampledDistribution(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    auto dist = std::make_shared<kernels::SampledDistribution>();

    const std::shared_ptr<const kernels::ExecutablePlan> plan =
        planFor(circuit);

    // Qubit -> clbit wiring of the (terminal) measurements.
    std::vector<std::pair<Qubit, Clbit>> wiring;
    for (const kernels::PlanEntry &entry : plan->entries()) {
        switch (entry.kind) {
          case kernels::KernelKind::Measure:
            wiring.emplace_back(entry.q0, entry.clbit);
            break;
          case kernels::KernelKind::PostSelectQ:
            dist->retainedFraction *=
                state.postSelect(entry.q0, entry.postselectValue);
            break;
          case kernels::KernelKind::ResetQ:
            // measurementsAreTerminal rejects Reset circuits.
            throw SimulationError("reset in sampled execution");
          default:
            state.applyKernel(entry);
        }
    }
    if (wiring.empty())
        return dist; // no measurements: every shot reads zero

    // Measured qubits, deduplicated: the marginal distribution is
    // over one bit per distinct qubit, and each wiring entry maps its
    // qubit's bit to a clbit.
    std::vector<Qubit> measured;
    for (const auto &[q, c] : wiring) {
        std::size_t j = 0;
        while (j < measured.size() && measured[j] != q)
            ++j;
        if (j == measured.size())
            measured.push_back(q);
        dist->bitWiring.emplace_back(j, c);
    }

    // measureAll-style circuits (every qubit, in wire order) use the
    // parallel elementwise probability kernel; true marginals use the
    // blocked parallel scatter (see kernels::marginalProbabilities) —
    // either way the build is one pass, amortised over every shot of
    // every job that shares the circuit.
    bool identity_marginal = measured.size() == state.numQubits();
    for (std::size_t j = 0; identity_marginal && j < measured.size();
         ++j)
        identity_marginal = measured[j] == j;
    if (identity_marginal) {
        // The fused kernel returns the block-folded total alongside
        // the probabilities, so the alias build skips its prefix
        // re-scan; the AliasTable guards the total (zero/non-finite
        // throws ValueError instead of renormalising into garbage).
        double total = 0.0;
        std::vector<double> probs = state.probabilities(&total);
        dist->table = kernels::AliasTable(probs, total);
    } else {
        dist->table = kernels::AliasTable(
            state.marginalProbabilities(measured));
    }
    return dist;
}

} // namespace

StatevectorSimulator::StatevectorSimulator(std::uint64_t seed)
    : rng_(seed)
{
}

bool
StatevectorSimulator::measurementsAreTerminal(const Circuit &circuit)
{
    std::set<Qubit> measured;
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Reset:
            return false;
          case OpKind::Measure:
            measured.insert(op.qubits[0]);
            break;
          case OpKind::Barrier:
            break;
          default:
            for (Qubit q : op.qubits)
                if (measured.count(q))
                    return false;
        }
    }
    return true;
}

Result
StatevectorSimulator::run(const Circuit &circuit, std::size_t shots)
{
    if (measurementsAreTerminal(circuit))
        return runSampled(circuit, shots);
    return runPerShot(circuit, shots);
}

Result
StatevectorSimulator::runSampled(const Circuit &circuit,
                                 std::size_t shots)
{
    // All measurements are terminal, so the whole evolution — plan,
    // final state, marginal, alias table — is shot-independent. With
    // an active PlanCache (the runtime JobQueue installs one) it is
    // built exactly once per (circuit, fusion) across all shards and
    // repeated jobs; shots then cost one O(1) draw each.
    std::shared_ptr<const kernels::SampledDistribution> dist;
    if (kernels::PlanCache *cache = kernels::currentPlanCache())
        dist = cache->sampledDistribution(
            circuit, kernels::currentFusionLevel(),
            [&]() { return buildSampledDistribution(circuit); });
    else
        dist = buildSampledDistribution(circuit);

    Result result(circuit.numClbits());
    result.setRetainedFraction(dist->retainedFraction);
    if (dist->bitWiring.empty()) {
        // No measurements: report the all-zero register for each shot.
        result.record(0, shots);
        return result;
    }

    // Telemetry clocks sit outside the sampling loop: per-run, not
    // per-shot, so the enabled-path overhead stays negligible.
    const bool telemetry = obs::anyEnabled();
    const auto start = telemetry ? obs::Tracer::Clock::now()
                                 : obs::Tracer::Clock::time_point{};
    for (std::size_t s = 0; s < shots; ++s) {
        const std::uint64_t key = dist->table.sample(rng_);
        std::uint64_t reg = 0;
        for (const auto &[j, c] : dist->bitWiring) {
            if ((key >> j) & 1)
                reg |= std::uint64_t{1} << c;
            else
                reg &= ~(std::uint64_t{1} << c);
        }
        result.record(reg);
    }
    if (telemetry) {
        const auto end = obs::Tracer::Clock::now();
        obs::complete("sim", "sampled_run", start, end,
                      {{"shots", shots}});
        const SimMetrics &m = simMetrics();
        obs::count(m.sampledShots, shots);
        const double seconds =
            std::chrono::duration<double>(end - start).count();
        if (seconds > 0.0)
            obs::setGauge(m.sampledShotsPerSec,
                          static_cast<double>(shots) / seconds);
    }
    return result;
}

Result
StatevectorSimulator::runPerShot(const Circuit &circuit,
                                 std::size_t shots)
{
    obs::Span run_span("sim", "pershot_run", {{"shots", shots}});
    obs::count(simMetrics().perShotShots, shots);
    Result result(circuit.numClbits());
    std::size_t attempted = 0;
    std::size_t kept = 0;

    // Lower (and fuse) once; every shot replays the same plan.
    const std::shared_ptr<const kernels::ExecutablePlan> plan =
        planFor(circuit);

    // Post-selection in per-shot mode conditions the ensemble: a shot
    // survives each PostSelect with the branch probability, otherwise
    // it is discarded and re-attempted (same semantics as the
    // trajectory backend).
    const std::size_t max_attempts = postSelectAttemptBudget(shots);
    while (kept < shots && attempted < max_attempts) {
        ++attempted;
        StateVector state(circuit.numQubits());
        std::uint64_t reg = 0;
        bool discarded = false;

        for (const kernels::PlanEntry &entry : plan->entries()) {
            switch (entry.kind) {
              case kernels::KernelKind::Measure:
              {
                const int outcome = state.measure(entry.q0, rng_);
                if (outcome)
                    reg |= std::uint64_t{1} << entry.clbit;
                else
                    reg &= ~(std::uint64_t{1} << entry.clbit);
                break;
              }
              case kernels::KernelKind::ResetQ:
                state.resetQubit(entry.q0, rng_);
                break;
              case kernels::KernelKind::PostSelectQ:
              {
                const double p1 = state.probabilityOfOne(entry.q0);
                const double p =
                    entry.postselectValue ? p1 : 1.0 - p1;
                if (p < 1e-12 || rng_.uniform() >= p) {
                    discarded = true;
                } else {
                    state.postSelect(entry.q0, entry.postselectValue);
                }
                break;
              }
              default:
                state.applyKernel(entry);
            }
            if (discarded)
                break;
        }
        if (discarded)
            continue;
        result.record(reg);
        ++kept;
    }
    if (kept < shots)
        throw SimulationError("post-selection discarded nearly every "
                              "shot; circuit is inconsistent");

    result.setRetainedFraction(static_cast<double>(kept) /
                               static_cast<double>(attempted));
    return result;
}

StateVector
StatevectorSimulator::finalState(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    const std::shared_ptr<const kernels::ExecutablePlan> plan =
        planFor(circuit);
    for (const kernels::PlanEntry &entry : plan->entries()) {
        switch (entry.kind) {
          case kernels::KernelKind::Measure:
            break;
          case kernels::KernelKind::ResetQ:
            state.resetQubit(entry.q0, rng_);
            break;
          case kernels::KernelKind::PostSelectQ:
            state.postSelect(entry.q0, entry.postselectValue);
            break;
          default:
            state.applyKernel(entry);
        }
    }
    return state;
}

StateVector
StatevectorSimulator::evolveWithMeasurements(const Circuit &circuit)
{
    StateVector state(circuit.numQubits());
    const std::shared_ptr<const kernels::ExecutablePlan> plan =
        planFor(circuit);
    for (const kernels::PlanEntry &entry : plan->entries()) {
        switch (entry.kind) {
          case kernels::KernelKind::Measure:
            state.measure(entry.q0, rng_);
            break;
          case kernels::KernelKind::ResetQ:
            state.resetQubit(entry.q0, rng_);
            break;
          case kernels::KernelKind::PostSelectQ:
            state.postSelect(entry.q0, entry.postselectValue);
            break;
          default:
            state.applyKernel(entry);
        }
    }
    return state;
}

} // namespace qra
