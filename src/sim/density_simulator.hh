/**
 * @file
 * Exact noisy simulator on the density-matrix backend.
 *
 * Noise is applied per the NoiseModel: a gate-error channel after each
 * instruction, thermal relaxation to every qubit for the duration of
 * each scheduled moment, and classical readout confusion folded into
 * the final outcome distribution.
 *
 * Measurements must be terminal per qubit (a measured qubit may not
 * be operated on again): the backend models measurement as dephasing
 * and reads the joint outcome distribution off the final diagonal,
 * which is exact under that restriction. Use TrajectorySimulator for
 * ancilla-reuse circuits.
 */

#ifndef QRA_SIM_DENSITY_SIMULATOR_HH
#define QRA_SIM_DENSITY_SIMULATOR_HH

#include <cstdint>
#include <map>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "noise/noise_model.hh"
#include "sim/density_matrix.hh"
#include "sim/result.hh"

namespace qra {

/** Exact (all-branches) noisy execution engine. */
class DensityMatrixSimulator
{
  public:
    explicit DensityMatrixSimulator(std::uint64_t seed = 7);

    /** Attach a noise model (nullptr or unset = ideal). */
    void setNoiseModel(const NoiseModel *noise) { noise_ = noise; }

    /**
     * Execute and sample @p shots outcomes from the exact final
     * distribution. The Result also carries the exact distribution.
     */
    Result run(const Circuit &circuit, std::size_t shots);

    /**
     * Exact outcome distribution over the classical register,
     * including readout error. Keys are register values.
     */
    std::map<std::uint64_t, double>
    exactDistribution(const Circuit &circuit);

    /** Evolve and return the final mixed state (measures dephase). */
    DensityMatrix finalState(const Circuit &circuit);

    void seed(std::uint64_t seed) { rng_.seed(seed); }

  private:
    struct Execution
    {
        DensityMatrix state;
        /** measured qubit -> clbit wiring, in program order. */
        std::vector<std::pair<Qubit, Clbit>> wiring;
        double retained = 1.0;

        explicit Execution(std::size_t nq) : state(nq) {}
    };

    Execution execute(const Circuit &circuit);

    const NoiseModel *noise_ = nullptr;
    Rng rng_;
};

} // namespace qra

#endif // QRA_SIM_DENSITY_SIMULATOR_HH
