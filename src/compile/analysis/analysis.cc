#include "compile/analysis/analysis.hh"

#include <algorithm>
#include <cstddef>
#include <map>
#include <numeric>

#include "math/matrix.hh"
#include "sim/kernels/plan.hh"
#include "stabilizer/stabilizer_state.hh"

namespace qra {
namespace compile {
namespace analysis {

namespace {

/** Partition effect of one instruction, precomputed per op index. */
enum class PartitionAction : std::uint8_t
{
    None,      ///< separable (1q gate, barrier, or cancelled-out run)
    Merge,     ///< union all operand groups
    SwapSlots, ///< exchange the two operand wires' groups exactly
    Reslot,    ///< measurement/reset: the wire returns to its own group
};

/** Union-find over state slots with per-root liveness + prefix count. */
class SlotPartition
{
  public:
    explicit SlotPartition(std::size_t num_qubits)
        : slotOf_(num_qubits), parent_(num_qubits), alive_(num_qubits, 1),
          prefix_(num_qubits, 0)
    {
        std::iota(slotOf_.begin(), slotOf_.end(), 0u);
        std::iota(parent_.begin(), parent_.end(), 0u);
    }

    std::uint32_t
    findRoot(Qubit wire)
    {
        return find(slotOf_[wire]);
    }

    bool isAlive(Qubit wire) { return alive_[findRoot(wire)] != 0; }
    void kill(Qubit wire) { alive_[findRoot(wire)] = 0; }

    std::size_t prefixGates(Qubit wire) { return prefix_[findRoot(wire)]; }
    void
    addPrefixGate(Qubit wire)
    {
        ++prefix_[findRoot(wire)];
    }

    void
    merge(Qubit a, Qubit b)
    {
        std::uint32_t ra = findRoot(a);
        std::uint32_t rb = findRoot(b);
        if (ra == rb)
            return;
        parent_[rb] = ra;
        alive_[ra] = alive_[ra] && alive_[rb];
        prefix_[ra] += prefix_[rb];
    }

    void
    swapSlots(Qubit a, Qubit b)
    {
        std::swap(slotOf_[a], slotOf_[b]);
    }

    /** Move @p wire to a fresh single-wire group (dead: the tableau
     *  cannot re-acquire a wire once its Clifford prefix ended). */
    void
    reslot(Qubit wire)
    {
        std::uint32_t slot = static_cast<std::uint32_t>(parent_.size());
        parent_.push_back(slot);
        alive_.push_back(0);
        prefix_.push_back(0);
        slotOf_[wire] = slot;
    }

    /** Sorted member wires of @p wire's current group. */
    std::vector<Qubit>
    members(Qubit wire)
    {
        std::uint32_t root = findRoot(wire);
        std::vector<Qubit> result;
        for (Qubit w = 0; w < slotOf_.size(); ++w)
            if (find(slotOf_[w]) == root)
                result.push_back(w);
        return result;
    }

    /** Snapshot: group id (smallest member wire) per wire. */
    std::vector<std::uint32_t>
    snapshot()
    {
        std::vector<std::uint32_t> byWire(slotOf_.size());
        std::map<std::uint32_t, std::uint32_t> firstWire;
        for (Qubit w = 0; w < slotOf_.size(); ++w) {
            std::uint32_t root = find(slotOf_[w]);
            auto it = firstWire.emplace(root, static_cast<std::uint32_t>(w));
            byWire[w] = it.first->second;
        }
        return byWire;
    }

  private:
    std::uint32_t
    find(std::uint32_t slot)
    {
        while (parent_[slot] != slot) {
            parent_[slot] = parent_[parent_[slot]];
            slot = parent_[slot];
        }
        return slot;
    }

    std::vector<std::uint32_t> slotOf_;
    std::vector<std::uint32_t> parent_;
    std::vector<char> alive_;
    std::vector<std::size_t> prefix_;
};

/** Lift @p op's unitary onto the ordered pair (lo, hi), bit 0 = lo. */
Matrix
liftToPair(const Operation &op, Qubit lo, Qubit hi)
{
    Matrix m = op.matrix();
    if (op.qubits.size() == 1) {
        // kron(A, B) puts B on the low bit.
        if (op.qubits[0] == lo)
            return Matrix::identity(2).kron(m);
        return m.kron(Matrix::identity(2));
    }
    if (op.qubits[0] == lo && op.qubits[1] == hi)
        return m;
    // Operand order reversed: conjugate by SWAP to relabel the bits.
    static const Matrix kSwap{{1, 0, 0, 0},
                              {0, 0, 1, 0},
                              {0, 1, 0, 0},
                              {0, 0, 0, 1}};
    return kSwap * m * kSwap;
}

/**
 * Default partition action of one instruction, before run refinement.
 */
PartitionAction
defaultAction(const Operation &op)
{
    switch (op.kind) {
      case OpKind::CX:
      case OpKind::CY:
      case OpKind::CZ:
      case OpKind::CCX:
        return PartitionAction::Merge;
      case OpKind::Swap:
        return PartitionAction::SwapSlots;
      case OpKind::Measure:
      case OpKind::Reset:
      case OpKind::PostSelect:
        return PartitionAction::Reslot;
      default:
        return PartitionAction::None;
    }
}

/**
 * Per-op partition actions with pair-run refinement: a maximal run of
 * consecutive unitary instructions confined to one qubit pair is
 * multiplied out and classified as a whole (kernels::classify2q), so
 * CX·CX cancellations, runs collapsing to a SWAP, and separable
 * diagonals never merge the two groups. The run's net action lands on
 * its first two-qubit instruction; the others become no-ops.
 */
std::vector<PartitionAction>
computeActions(const Circuit &circuit)
{
    const auto &ops = circuit.ops();
    std::vector<PartitionAction> actions(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
        actions[i] = defaultAction(ops[i]);

    std::size_t i = 0;
    while (i < ops.size()) {
        const Operation &op = ops[i];
        if (!opIsUnitary(op.kind) || op.qubits.size() != 2) {
            ++i;
            continue;
        }
        const Qubit lo = std::min(op.qubits[0], op.qubits[1]);
        const Qubit hi = std::max(op.qubits[0], op.qubits[1]);
        // Extend the run while instructions stay unitary and confined
        // to {lo, hi}.
        std::size_t end = i;
        while (end < ops.size()) {
            const Operation &cur = ops[end];
            if (!opIsUnitary(cur.kind))
                break;
            bool confined = true;
            for (Qubit q : cur.qubits)
                confined = confined && (q == lo || q == hi);
            if (!confined)
                break;
            ++end;
        }
        if (end == i + 1) {
            ++i;
            continue; // lone gate: the default action is already exact
        }
        Matrix product = Matrix::identity(4);
        for (std::size_t j = i; j < end; ++j)
            product = liftToPair(ops[j], lo, hi) * product;
        kernels::PlanEntry entry =
            kernels::classify2q(lo, hi, product.data().data());

        PartitionAction net = PartitionAction::Merge;
        switch (entry.kind) {
          case kernels::KernelKind::Identity:
          case kernels::KernelKind::Diagonal1q:
          case kernels::KernelKind::AntiDiagonal1q:
          case kernels::KernelKind::General1q:
          case kernels::KernelKind::PauliX:
            net = PartitionAction::None;
            break;
          case kernels::KernelKind::PhaseOnMask: {
            // Diagonal: entangling only when the phase mask involves
            // both wires; a single-wire phase is separable.
            const std::uint64_t pair_mask =
                (std::uint64_t{1} << lo) | (std::uint64_t{1} << hi);
            net = ((entry.mask & pair_mask) == pair_mask)
                      ? PartitionAction::Merge
                      : PartitionAction::None;
            break;
          }
          case kernels::KernelKind::SwapQubits:
            net = PartitionAction::SwapSlots;
            break;
          default:
            net = PartitionAction::Merge;
            break;
        }
        bool placed = false;
        for (std::size_t j = i; j < end; ++j) {
            if (ops[j].qubits.size() != 2)
                continue;
            actions[j] = placed ? PartitionAction::None : net;
            placed = true;
        }
        i = end;
    }
    return actions;
}

/** Deterministic measurement outcome, or -1 when the qubit is random. */
int
outcomeOf(const StabilizerState &tableau, Qubit q)
{
    double p = tableau.probabilityOfOne(q);
    if (p < 0.25)
        return 0;
    if (p > 0.75)
        return 1;
    return -1;
}

/** Classify one group's tableau state at its cut point. */
GroupFact
classifyGroup(const StabilizerState &tableau, std::vector<Qubit> members,
              std::size_t cut, std::size_t prefix_gates)
{
    GroupFact fact;
    fact.qubits = std::move(members);
    fact.cutIndex = cut;
    fact.prefixGates = prefix_gates;
    fact.state = GroupState::Other;
    if (fact.qubits.size() > 64)
        return fact;

    std::uint64_t bits = 0;
    bool all_deterministic = true;
    for (std::size_t j = 0; j < fact.qubits.size(); ++j) {
        int outcome = outcomeOf(tableau, fact.qubits[j]);
        if (outcome < 0) {
            all_deterministic = false;
            break;
        }
        bits |= std::uint64_t(outcome) << j;
    }
    if (all_deterministic) {
        fact.state = GroupState::KnownBasis;
        fact.basisBits = bits;
        return fact;
    }

    if (fact.qubits.size() == 1) {
        // |+> and |-> turn deterministic under H.
        StabilizerState copy = tableau;
        copy.applyH(fact.qubits[0]);
        int outcome = outcomeOf(copy, fact.qubits[0]);
        if (outcome >= 0) {
            fact.state = GroupState::UniformSuperposition;
            fact.minusPhase = outcome == 1;
        }
        return fact;
    }

    // GHZ-class test: un-build with CX fan-out from the first member.
    // A complement-pair state a|x> + b|~x> maps to a product where
    // member j >= 1 is deterministic with value x_j ^ x_0 and member 0
    // stays uniformly random.
    StabilizerState copy = tableau;
    const Qubit head = fact.qubits[0];
    for (std::size_t j = 1; j < fact.qubits.size(); ++j)
        copy.applyCx(head, fact.qubits[j]);
    if (outcomeOf(copy, head) >= 0)
        return fact;
    std::uint64_t rel = 0;
    for (std::size_t j = 1; j < fact.qubits.size(); ++j) {
        int outcome = outcomeOf(copy, fact.qubits[j]);
        if (outcome < 0)
            return fact;
        rel |= std::uint64_t(outcome) << j;
    }
    if (rel == 0) {
        fact.state = GroupState::GhzLike;
        fact.oddParity = false;
    } else if (fact.qubits.size() == 2 && rel == 2) {
        fact.state = GroupState::GhzLike;
        fact.oddParity = true;
    }
    return fact;
}

/** Known-basis frontier: one optional bit per wire. */
class Frontier
{
  public:
    explicit Frontier(std::size_t num_qubits)
        : value_(num_qubits, 0), known_(num_qubits, 1),
          measureFactDone_(num_qubits, 0), opsTouched_(num_qubits, 0)
    {
    }

    void
    step(const Operation &op, std::size_t index,
         std::vector<FrontierFact> &out)
    {
        const auto &q = op.qubits;
        if (opIsUnitary(op.kind))
            for (Qubit w : q)
                ++opsTouched_[w];
        switch (op.kind) {
          case OpKind::I:
          case OpKind::Z:
          case OpKind::S:
          case OpKind::Sdg:
          case OpKind::T:
          case OpKind::Tdg:
          case OpKind::RZ:
          case OpKind::P:
          case OpKind::CZ:
          case OpKind::Barrier:
            break;
          case OpKind::Measure:
            // The value survives measurement; record the fact at the
            // first measurement, the natural pre-readout cut point.
            if (known_[q[0]] && !measureFactDone_[q[0]]) {
                out.push_back(FrontierFact{q[0], index, value_[q[0]],
                                           opsTouched_[q[0]]});
                measureFactDone_[q[0]] = 1;
            }
            break;
          case OpKind::X:
          case OpKind::Y:
            value_[q[0]] ^= 1;
            break;
          case OpKind::Swap:
            std::swap(value_[q[0]], value_[q[1]]);
            std::swap(known_[q[0]], known_[q[1]]);
            break;
          case OpKind::CX:
          case OpKind::CY:
            if (!known_[q[0]])
                forget(q[1], index, out);
            else if (value_[q[0]])
                value_[q[1]] ^= 1;
            break;
          case OpKind::CCX:
            if ((known_[q[0]] && !value_[q[0]]) ||
                (known_[q[1]] && !value_[q[1]]))
                break; // a control is provably 0: no-op
            if (known_[q[0]] && known_[q[1]])
                value_[q[2]] ^= 1;
            else
                forget(q[2], index, out);
            break;
          case OpKind::Reset:
            value_[q[0]] = 0;
            known_[q[0]] = 1;
            break;
          case OpKind::PostSelect:
            value_[q[0]] = op.postselectValue;
            known_[q[0]] = 1;
            break;
          default: // H, SX, RX, RY, U: basis value lost
            forget(q[0], index, out);
            break;
        }
    }

    void
    finish(const Circuit &circuit, std::vector<FrontierFact> &out) const
    {
        // Wires still known at the end and never measured: the fact
        // holds over the whole program (measured wires already got a
        // fact at their first measurement).
        for (Qubit w = 0; w < value_.size(); ++w)
            if (known_[w] && !measureFactDone_[w])
                out.push_back(FrontierFact{w, circuit.size(), value_[w],
                                           opsTouched_[w]});
    }

  private:
    void
    forget(Qubit w, std::size_t index, std::vector<FrontierFact> &out)
    {
        if (known_[w]) {
            // opsTouched_ already counts the op that forgets the
            // value; the fact only covers the gates before it.
            std::size_t touched = opsTouched_[w] ? opsTouched_[w] - 1 : 0;
            out.push_back(FrontierFact{w, index, value_[w], touched});
        }
        known_[w] = 0;
    }

    std::vector<int> value_;
    std::vector<char> known_;
    std::vector<char> measureFactDone_;
    std::vector<std::size_t> opsTouched_;
};

} // namespace

const char *
groupStateName(GroupState state)
{
    switch (state) {
      case GroupState::KnownBasis:
        return "known-basis";
      case GroupState::UniformSuperposition:
        return "uniform-superposition";
      case GroupState::GhzLike:
        return "ghz-like";
      case GroupState::Other:
        return "other";
    }
    return "?";
}

std::uint32_t
CircuitAnalysis::groupIdAt(std::size_t i, Qubit q) const
{
    return partitionAt.at(i).at(q);
}

CircuitAnalysis
analyzeCircuit(const Circuit &circuit)
{
    const std::size_t n = circuit.numQubits();
    const auto &ops = circuit.ops();

    CircuitAnalysis result;
    result.numQubits = n;
    result.numOps = ops.size();
    result.timeline.resize(n);
    result.partitionAt.reserve(ops.size() + 1);

    SlotPartition partition(n);
    StabilizerState tableau(n);
    Frontier frontier(n);
    std::vector<char> collapsed(n, 0);
    const std::vector<PartitionAction> actions = computeActions(circuit);

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Operation &op = ops[i];
        result.partitionAt.push_back(partition.snapshot());

        // --- stabilizer-prefix domain --------------------------------
        if (op.kind != OpKind::Barrier) {
            bool all_alive = true;
            for (Qubit q : op.qubits)
                all_alive = all_alive && partition.isAlive(q);
            const bool track = all_alive && opIsUnitary(op.kind) &&
                               StabilizerState::isCliffordOp(op.kind);
            if (track) {
                tableau.applyUnitary(op);
                ++result.cliffordPrefixGates;
            } else {
                // The Clifford prefix of every live operand group ends
                // here: emit its fact, then abandon it. Distinct roots
                // are visited once (members() is canonical).
                for (Qubit q : op.qubits) {
                    if (!partition.isAlive(q))
                        continue;
                    result.facts.push_back(classifyGroup(
                        tableau, partition.members(q), i,
                        partition.prefixGates(q)));
                    partition.kill(q);
                }
            }
            // --- separability partition ------------------------------
            switch (actions[i]) {
              case PartitionAction::None:
                break;
              case PartitionAction::Merge:
                for (std::size_t j = 1; j < op.qubits.size(); ++j)
                    partition.merge(op.qubits[0], op.qubits[j]);
                break;
              case PartitionAction::SwapSlots:
                partition.swapSlots(op.qubits[0], op.qubits[1]);
                break;
              case PartitionAction::Reslot:
                partition.reslot(op.qubits[0]);
                break;
            }
            if (track) {
                // Count the gate for each (post-merge) operand group.
                std::uint32_t last_root =
                    static_cast<std::uint32_t>(-1);
                for (Qubit q : op.qubits) {
                    std::uint32_t root = partition.findRoot(q);
                    if (root != last_root)
                        partition.addPrefixGate(q);
                    last_root = root;
                }
            }
        }

        // --- known-basis frontier ------------------------------------
        frontier.step(op, i, result.frontier);

        // --- lint timeline -------------------------------------------
        if (opIsUnitary(op.kind)) {
            for (Qubit q : op.qubits)
                ++result.timeline[q].gateCount;
            if (op.qubits.size() >= 2)
                for (Qubit q : op.qubits)
                    if (collapsed[q] &&
                        result.timeline[q].reuseWithoutReset ==
                            QubitTimeline::kNever)
                        result.timeline[q].reuseWithoutReset = i;
        } else if (op.kind == OpKind::Measure) {
            Qubit q = op.qubits[0];
            if (result.timeline[q].firstMeasure == QubitTimeline::kNever)
                result.timeline[q].firstMeasure = i;
            result.timeline[q].lastMeasure = i;
            collapsed[q] = 1;
        } else if (op.kind == OpKind::Reset) {
            result.timeline[op.qubits[0]].everReset = true;
            collapsed[op.qubits[0]] = 0;
        } else if (op.kind == OpKind::PostSelect) {
            result.timeline[op.qubits[0]].everPostSelected = true;
        }
    }
    result.partitionAt.push_back(partition.snapshot());
    frontier.finish(circuit, result.frontier);

    // Groups still alive at the end of the circuit: their Clifford
    // prefix is the whole program.
    std::vector<char> emitted(n, 0);
    for (Qubit q = 0; q < n; ++q) {
        if (emitted[q] || !partition.isAlive(q))
            continue;
        std::vector<Qubit> members = partition.members(q);
        for (Qubit w : members)
            emitted[w] = 1;
        result.facts.push_back(classifyGroup(tableau, std::move(members),
                                             ops.size(),
                                             partition.prefixGates(q)));
    }

    std::sort(result.facts.begin(), result.facts.end(),
              [](const GroupFact &a, const GroupFact &b) {
                  if (a.cutIndex != b.cutIndex)
                      return a.cutIndex < b.cutIndex;
                  return a.qubits.front() < b.qubits.front();
              });

    // Final partition, one sorted group per entry, ordered by leader.
    std::map<std::uint32_t, std::vector<Qubit>> groups;
    const auto &final_snapshot = result.partitionAt.back();
    for (Qubit w = 0; w < n; ++w)
        groups[final_snapshot[w]].push_back(w);
    for (auto &entry : groups)
        result.finalGroups.push_back(std::move(entry.second));

    return result;
}

} // namespace analysis
} // namespace compile
} // namespace qra
