#include "compile/analysis/auto_assert.hh"

#include <algorithm>
#include <memory>
#include <string>

#include "assertions/classical_assertion.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/superposition_assertion.hh"
#include "common/hash.hh"
#include "compile/passes.hh"
#include "obs/metrics.hh"

namespace qra {
namespace compile {

namespace {

/** Registered-once handles for the analysis counters. */
struct AnalysisMetrics
{
    obs::CounterHandle cliffordPrefixGates;
    obs::CounterHandle groups;
    obs::CounterHandle checksInjected;
};

const AnalysisMetrics &
analysisMetrics()
{
    static const AnalysisMetrics metrics = []() {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        AnalysisMetrics m;
        m.cliffordPrefixGates =
            reg.counter("compile.analysis.clifford_prefix_gates");
        m.groups = reg.counter("compile.analysis.groups");
        m.checksInjected =
            reg.counter("compile.analysis.checks_injected");
        return m;
    }();
    return metrics;
}

/** Check strength rank: lower wins ties at equal cut depth. */
enum KindRank
{
    kEntanglement = 0,
    kSuperposition = 1,
    kClassical = 2,
};

struct Candidate
{
    int rank = kClassical;
    std::size_t cut = 0;
    std::vector<Qubit> qubits;
    std::uint64_t bits = 0;
    bool minusPhase = false;
    bool oddParity = false;
};

bool
deeperFirst(const Candidate &a, const Candidate &b)
{
    if (a.cut != b.cut)
        return a.cut > b.cut;
    if (a.rank != b.rank)
        return a.rank < b.rank;
    return a.qubits.front() < b.qubits.front();
}

AssertionSpec
toSpec(const Candidate &candidate)
{
    AssertionSpec spec;
    spec.targets = candidate.qubits;
    spec.insertAt = candidate.cut;
    switch (candidate.rank) {
      case kEntanglement:
        spec.assertion = std::make_shared<EntanglementAssertion>(
            candidate.qubits.size(),
            candidate.oddParity ? EntanglementAssertion::Parity::Odd
                                : EntanglementAssertion::Parity::Even);
        spec.label = "auto:entangled";
        break;
      case kSuperposition:
        spec.assertion = std::make_shared<SuperpositionAssertion>(
            candidate.minusPhase
                ? SuperpositionAssertion::Target::Minus
                : SuperpositionAssertion::Target::Plus);
        spec.label = "auto:superposition";
        break;
      default:
        spec.assertion = std::make_shared<ClassicalAssertion>(
            candidate.bits, candidate.qubits.size());
        spec.label = "auto:classical";
        break;
    }
    return spec;
}

} // namespace

std::vector<AssertionSpec>
generateAssertions(const analysis::CircuitAnalysis &analysis,
                   const AutoAssertOptions &options)
{
    const std::size_t min_depth = std::max<std::size_t>(
        options.minPrefixDepth, 1);

    std::vector<Candidate> candidates;
    for (const analysis::GroupFact &fact : analysis.facts) {
        if (fact.prefixGates < min_depth || fact.qubits.empty())
            continue;
        Candidate c;
        c.cut = fact.cutIndex;
        c.qubits = fact.qubits;
        switch (fact.state) {
          case analysis::GroupState::KnownBasis:
            if (fact.qubits.size() > 64)
                continue;
            c.rank = kClassical;
            c.bits = fact.basisBits;
            break;
          case analysis::GroupState::UniformSuperposition:
            c.rank = kSuperposition;
            c.minusPhase = fact.minusPhase;
            break;
          case analysis::GroupState::GhzLike:
            c.rank = kEntanglement;
            c.oddParity = fact.oddParity;
            break;
          case analysis::GroupState::Other:
            continue;
        }
        candidates.push_back(std::move(c));
    }
    for (const analysis::FrontierFact &fact : analysis.frontier) {
        if (fact.opsTouched < min_depth)
            continue;
        Candidate c;
        c.rank = kClassical;
        c.cut = fact.cutIndex;
        c.qubits = {fact.qubit};
        c.bits = static_cast<std::uint64_t>(fact.value);
        candidates.push_back(std::move(c));
    }

    std::sort(candidates.begin(), candidates.end(), deeperFirst);

    // Greedy selection, deepest first: at most one classical check
    // per qubit (the frontier and the tableau both produce basis
    // facts; the deeper cut covers strictly more of the circuit).
    std::vector<char> classical_covered(analysis.numQubits, 0);
    std::vector<Candidate> selected;
    for (Candidate &candidate : candidates) {
        if (selected.size() >= options.maxChecks)
            break;
        if (candidate.rank == kClassical) {
            bool overlap = false;
            for (Qubit q : candidate.qubits)
                overlap = overlap || classical_covered[q];
            if (overlap)
                continue;
            for (Qubit q : candidate.qubits)
                classical_covered[q] = 1;
        }
        selected.push_back(std::move(candidate));
    }

    std::sort(selected.begin(), selected.end(),
              [](const Candidate &a, const Candidate &b) {
                  if (a.cut != b.cut)
                      return a.cut < b.cut;
                  return a.qubits.front() < b.qubits.front();
              });

    std::vector<AssertionSpec> specs;
    specs.reserve(selected.size());
    for (const Candidate &candidate : selected)
        specs.push_back(toSpec(candidate));
    return specs;
}

std::string
AnalyzePass::describe() const
{
    return "analyze (tableau-prefix, separability, known-basis)";
}

void
AnalyzePass::run(CompileContext &ctx) const
{
    auto result = std::make_shared<analysis::CircuitAnalysis>(
        analysis::analyzeCircuit(ctx.circuit));
    obs::count(analysisMetrics().cliffordPrefixGates,
               result->cliffordPrefixGates);
    obs::count(analysisMetrics().groups, result->finalGroups.size());
    ctx.pendingNote = std::to_string(result->finalGroups.size()) +
                      " groups, " +
                      std::to_string(result->cliffordPrefixGates) +
                      " clifford-prefix gates, " +
                      std::to_string(result->facts.size()) + " facts";
    ctx.analysis = std::move(result);
}

std::uint64_t
AutoAssertPass::fingerprint(std::uint64_t h) const
{
    // The generated specs are a pure function of (circuit, options);
    // the circuit hash is already part of every cache key, so folding
    // the budget plus the user-visible weave inputs suffices.
    h = fnv1aMix64(h, options_.maxChecks);
    h = fnv1aMix64(h, options_.minPrefixDepth);
    h = fnv1aMix64(h, userSpecs_.size());
    for (const AssertionSpec &spec : userSpecs_)
        h = foldAssertionSpec(h, spec);
    return foldInstrumentOptions(h, instrumentOptions_);
}

std::string
AutoAssertPass::describe() const
{
    std::string text = "auto-assert (max " +
                       std::to_string(options_.maxChecks) +
                       " checks, min depth " +
                       std::to_string(options_.minPrefixDepth);
    if (!userSpecs_.empty())
        text += ", +" + std::to_string(userSpecs_.size()) + " user";
    if (instrumentOptions_.reuseAncillas)
        text += ", reuse-ancillas";
    if (!instrumentOptions_.barriers)
        text += ", no-barriers";
    return text + ")";
}

void
AutoAssertPass::run(CompileContext &ctx) const
{
    std::shared_ptr<const analysis::CircuitAnalysis> result =
        ctx.analysis;
    if (!result)
        result = std::make_shared<analysis::CircuitAnalysis>(
            analysis::analyzeCircuit(ctx.circuit));

    std::vector<AssertionSpec> specs = userSpecs_;
    std::vector<AssertionSpec> generated =
        generateAssertions(*result, options_);
    specs.insert(specs.end(), generated.begin(), generated.end());

    auto instrumented = std::make_shared<InstrumentedCircuit>(
        detail::weaveAssertions(ctx.circuit, specs,
                                instrumentOptions_));
    ctx.circuit = instrumented->circuit();
    ctx.instrumented = std::move(instrumented);

    obs::count(analysisMetrics().checksInjected, generated.size());
    ctx.pendingNote = std::to_string(generated.size()) +
                      " auto checks" +
                      (userSpecs_.empty()
                           ? std::string()
                           : ", " + std::to_string(userSpecs_.size()) +
                                 " user");
}

} // namespace compile
} // namespace qra
