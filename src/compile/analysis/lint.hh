/**
 * @file
 * Circuit lint: structured warnings derived from the static analysis,
 * catching broken circuits before they burn simulator time.
 *
 * Warning codes:
 *   QRA-L001  qubit is gated but never measured, asserted, or
 *             post-selected — its work is unobservable
 *   QRA-L002  single-qubit gate after the qubit's final measurement
 *             (dead code: nothing downstream can observe it)
 *   QRA-L003  entanglement assertion whose targets are provably
 *             unentangled at the insertion point — the check is
 *             vacuous (a product state passes a parity check)
 *   QRA-L004  measured qubit reused in a multi-qubit gate without an
 *             intervening reset (collapsed ancilla leaks its outcome)
 *   QRA-L005  circuit cannot be routed on the coupling map under any
 *             layout (too many qubits, or an interaction component
 *             larger than the largest connected device component)
 */

#ifndef QRA_COMPILE_ANALYSIS_LINT_HH
#define QRA_COMPILE_ANALYSIS_LINT_HH

#include <string>
#include <vector>

#include "assertions/injector.hh"
#include "compile/analysis/analysis.hh"
#include "compile/pass.hh"
#include "transpile/coupling_map.hh"

namespace qra {
namespace compile {
namespace analysis {

/** Lint warning category. */
enum class LintCode
{
    NeverObserved,       ///< QRA-L001
    GateAfterMeasure,    ///< QRA-L002
    VacuousEntanglement, ///< QRA-L003
    ReuseWithoutReset,   ///< QRA-L004
    Unroutable,          ///< QRA-L005
};

/** Stable "QRA-Lxxx" identifier of @p code. */
const char *lintCodeName(LintCode code);

/** One structured lint finding. */
struct LintWarning
{
    static constexpr std::size_t kWholeCircuit =
        static_cast<std::size_t>(-1);

    LintCode code = LintCode::NeverObserved;
    /** Instruction the warning anchors to; kWholeCircuit if none. */
    std::size_t opIndex = kWholeCircuit;
    /** Qubits involved, ascending. */
    std::vector<Qubit> qubits;
    std::string message;

    /** Render as "QRA-L001 [q0 @op3] message". */
    std::string str() const;
};

/**
 * Lint @p circuit using @p analysis facts. @p specs are the assertion
 * specs that will be woven (their targets count as observed and their
 * entanglement checks are validated against the separability
 * partition); @p coupling enables the routability check (null skips
 * it). Deterministic; warnings are ordered by (code, opIndex, qubit).
 */
std::vector<LintWarning>
lintCircuit(const Circuit &circuit, const CircuitAnalysis &analysis,
            const std::vector<AssertionSpec> &specs = {},
            const CouplingMap *coupling = nullptr);

} // namespace analysis

/**
 * Lint as a pipeline stage: renders each warning into
 * CompileContext::diagnostics (never fails the compile).
 */
class DiagnosticsPass : public Pass
{
  public:
    explicit DiagnosticsPass(std::vector<AssertionSpec> specs = {})
        : specs_(std::move(specs))
    {
    }

    std::string name() const override { return "lint"; }
    std::uint64_t fingerprint(std::uint64_t h) const override;
    std::string describe() const override;
    void run(CompileContext &ctx) const override;

  private:
    std::vector<AssertionSpec> specs_;
};

} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_ANALYSIS_LINT_HH
