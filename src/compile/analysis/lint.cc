#include "compile/analysis/lint.hh"

#include <algorithm>
#include <numeric>
#include <queue>

#include "common/hash.hh"
#include "compile/passes.hh"
#include "obs/metrics.hh"

namespace qra {
namespace compile {
namespace analysis {

namespace {

/** Size of the largest connected component of the coupling graph. */
std::size_t
largestDeviceComponent(const CouplingMap &coupling)
{
    const std::size_t n = coupling.numQubits();
    std::vector<char> seen(n, 0);
    std::size_t best = 0;
    for (Qubit start = 0; start < n; ++start) {
        if (seen[start])
            continue;
        std::size_t size = 0;
        std::queue<Qubit> frontier;
        frontier.push(start);
        seen[start] = 1;
        while (!frontier.empty()) {
            Qubit q = frontier.front();
            frontier.pop();
            ++size;
            for (Qubit next : coupling.neighbors(q))
                if (!seen[next]) {
                    seen[next] = 1;
                    frontier.push(next);
                }
        }
        best = std::max(best, size);
    }
    return best;
}

/** Largest multi-qubit-interaction component of the circuit. */
std::size_t
largestInteractionComponent(const Circuit &circuit)
{
    std::vector<std::size_t> parent(circuit.numQubits());
    std::iota(parent.begin(), parent.end(), std::size_t{0});
    auto find = [&parent](std::size_t q) {
        while (parent[q] != q) {
            parent[q] = parent[parent[q]];
            q = parent[q];
        }
        return q;
    };
    for (const Operation &op : circuit.ops()) {
        if (!opIsUnitary(op.kind) || op.qubits.size() < 2)
            continue;
        for (std::size_t j = 1; j < op.qubits.size(); ++j)
            parent[find(op.qubits[0])] = find(op.qubits[j]);
    }
    std::vector<std::size_t> size(circuit.numQubits(), 0);
    std::size_t best = 0;
    for (std::size_t q = 0; q < circuit.numQubits(); ++q)
        best = std::max(best, ++size[find(q)]);
    return best;
}

} // namespace

const char *
lintCodeName(LintCode code)
{
    switch (code) {
      case LintCode::NeverObserved:
        return "QRA-L001";
      case LintCode::GateAfterMeasure:
        return "QRA-L002";
      case LintCode::VacuousEntanglement:
        return "QRA-L003";
      case LintCode::ReuseWithoutReset:
        return "QRA-L004";
      case LintCode::Unroutable:
        return "QRA-L005";
    }
    return "QRA-L???";
}

std::string
LintWarning::str() const
{
    std::string text = lintCodeName(code);
    text += " [";
    for (std::size_t j = 0; j < qubits.size(); ++j)
        text += (j ? " q" : "q") + std::to_string(qubits[j]);
    if (opIndex != kWholeCircuit)
        text += (qubits.empty() ? "@op" : " @op") +
                std::to_string(opIndex);
    text += "] " + message;
    return text;
}

std::vector<LintWarning>
lintCircuit(const Circuit &circuit, const CircuitAnalysis &analysis,
            const std::vector<AssertionSpec> &specs,
            const CouplingMap *coupling)
{
    std::vector<LintWarning> warnings;
    const auto &ops = circuit.ops();

    std::vector<char> asserted(circuit.numQubits(), 0);
    for (const AssertionSpec &spec : specs)
        for (Qubit q : spec.targets)
            if (q < asserted.size())
                asserted[q] = 1;

    // QRA-L001: gated but never observed.
    for (Qubit q = 0; q < circuit.numQubits(); ++q) {
        const QubitTimeline &line = analysis.timeline[q];
        if (line.gateCount == 0 ||
            line.firstMeasure != QubitTimeline::kNever ||
            line.everPostSelected || asserted[q])
            continue;
        warnings.push_back(
            {LintCode::NeverObserved, LintWarning::kWholeCircuit,
             {q},
             "qubit is gated but never measured or asserted; its "
             "work is unobservable"});
    }

    // QRA-L002: single-qubit gate after the final measurement.
    for (Qubit q = 0; q < circuit.numQubits(); ++q) {
        const QubitTimeline &line = analysis.timeline[q];
        if (line.lastMeasure == QubitTimeline::kNever)
            continue;
        std::size_t first1q = QubitTimeline::kNever;
        bool reused = false;
        for (std::size_t i = line.lastMeasure + 1; i < ops.size(); ++i) {
            const Operation &op = ops[i];
            bool involved = false;
            for (Qubit w : op.qubits)
                involved = involved || w == q;
            if (!involved)
                continue;
            if (op.kind == OpKind::Reset ||
                (opIsUnitary(op.kind) && op.qubits.size() >= 2)) {
                // Multi-qubit reuse is QRA-L004's concern; a reset
                // means intentional re-preparation.
                reused = true;
                break;
            }
            if (opIsUnitary(op.kind) && first1q == QubitTimeline::kNever)
                first1q = i;
        }
        if (!reused && first1q != QubitTimeline::kNever)
            warnings.push_back(
                {LintCode::GateAfterMeasure, first1q,
                 {q},
                 "gate after the qubit's final measurement is dead "
                 "code"});
    }

    // QRA-L003: entanglement check over provably separable targets.
    for (const AssertionSpec &spec : specs) {
        if (!spec.assertion ||
            spec.assertion->kind() != AssertionKind::Entanglement ||
            spec.targets.size() < 2)
            continue;
        const std::size_t boundary =
            std::min(spec.insertAt, analysis.numOps);
        bool split = false;
        for (std::size_t j = 1; j < spec.targets.size() && !split; ++j)
            split = analysis.groupIdAt(boundary, spec.targets[j]) !=
                    analysis.groupIdAt(boundary, spec.targets[0]);
        if (!split)
            continue;
        std::vector<Qubit> targets = spec.targets;
        std::sort(targets.begin(), targets.end());
        warnings.push_back(
            {LintCode::VacuousEntanglement, boundary,
             std::move(targets),
             "entanglement assertion targets are provably "
             "unentangled at the insertion point; the parity check "
             "is vacuous" +
                 (spec.label.empty() ? std::string()
                                     : " (" + spec.label + ")")});
    }

    // QRA-L004: collapsed ancilla reused without reset.
    for (Qubit q = 0; q < circuit.numQubits(); ++q) {
        const QubitTimeline &line = analysis.timeline[q];
        if (line.reuseWithoutReset == QubitTimeline::kNever)
            continue;
        warnings.push_back(
            {LintCode::ReuseWithoutReset, line.reuseWithoutReset,
             {q},
             "measured qubit enters a multi-qubit gate without an "
             "intervening reset"});
    }

    // QRA-L005: unroutable on the device under any layout.
    if (coupling != nullptr) {
        if (circuit.numQubits() > coupling->numQubits()) {
            warnings.push_back(
                {LintCode::Unroutable, LintWarning::kWholeCircuit,
                 {},
                 "circuit uses " + std::to_string(circuit.numQubits()) +
                     " qubits but the device has " +
                     std::to_string(coupling->numQubits())});
        } else {
            const std::size_t need =
                largestInteractionComponent(circuit);
            const std::size_t have =
                largestDeviceComponent(*coupling);
            if (need > have)
                warnings.push_back(
                    {LintCode::Unroutable, LintWarning::kWholeCircuit,
                     {},
                     "an interaction component of " +
                         std::to_string(need) +
                         " qubits cannot fit the largest connected "
                         "device component of " +
                         std::to_string(have)});
        }
    }

    std::sort(warnings.begin(), warnings.end(),
              [](const LintWarning &a, const LintWarning &b) {
                  if (a.code != b.code)
                      return a.code < b.code;
                  if (a.opIndex != b.opIndex)
                      return a.opIndex < b.opIndex;
                  const Qubit qa = a.qubits.empty() ? 0 : a.qubits[0];
                  const Qubit qb = b.qubits.empty() ? 0 : b.qubits[0];
                  return qa < qb;
              });
    return warnings;
}

} // namespace analysis

namespace {

const obs::CounterHandle &
lintWarningsCounter()
{
    static const obs::CounterHandle handle =
        obs::MetricsRegistry::global().counter(
            "compile.analysis.lint_warnings");
    return handle;
}

} // namespace

std::uint64_t
DiagnosticsPass::fingerprint(std::uint64_t h) const
{
    h = fnv1aMix64(h, specs_.size());
    for (const AssertionSpec &spec : specs_)
        h = foldAssertionSpec(h, spec);
    return h;
}

std::string
DiagnosticsPass::describe() const
{
    if (specs_.empty())
        return "lint";
    return "lint (" + std::to_string(specs_.size()) + " specs)";
}

void
DiagnosticsPass::run(CompileContext &ctx) const
{
    std::shared_ptr<const analysis::CircuitAnalysis> result =
        ctx.analysis;
    if (!result)
        result = std::make_shared<analysis::CircuitAnalysis>(
            analysis::analyzeCircuit(ctx.circuit));

    std::vector<analysis::LintWarning> warnings =
        analysis::lintCircuit(ctx.circuit, *result, specs_,
                              ctx.coupling);
    for (const analysis::LintWarning &warning : warnings)
        ctx.diagnostics.push_back(warning.str());
    obs::count(lintWarningsCounter(), warnings.size());
    ctx.pendingNote =
        std::to_string(warnings.size()) + " warnings";
}

} // namespace compile
} // namespace qra
