/**
 * @file
 * Automatic assertion generation on top of the static analysis: turn
 * GroupFacts / FrontierFacts into the paper's classical /
 * superposition / entanglement checks at high-value cut points, under
 * a cost budget — any circuit becomes an assertion workload with zero
 * annotation (ROADMAP item 4(c); quAssert, arXiv:2303.01487).
 *
 * Two passes plug this into the compile pipeline:
 *  - AnalyzePass runs analyzeCircuit once and publishes the result on
 *    the CompileContext (memoised with the prepared circuit in the
 *    JobQueue cache);
 *  - AutoAssertPass derives AssertionSpecs from the facts, appends
 *    them to any user-written specs, and weaves the combined set.
 */

#ifndef QRA_COMPILE_ANALYSIS_AUTO_ASSERT_HH
#define QRA_COMPILE_ANALYSIS_AUTO_ASSERT_HH

#include <cstdint>
#include <vector>

#include "assertions/injector.hh"
#include "compile/analysis/analysis.hh"
#include "compile/pass.hh"

namespace qra {
namespace compile {

/** Cost budget for automatic check generation. */
struct AutoAssertOptions
{
    /** Hard cap on the number of injected checks. */
    std::size_t maxChecks = 8;

    /**
     * Minimum gates a fact's prefix must cover to be worth a check
     * (a check on an untouched |0> wire detects nothing but idle
     * noise and costs an ancilla).
     */
    std::size_t minPrefixDepth = 1;
};

/**
 * Derive assertion specs from @p analysis facts under @p options.
 *
 * Selection is deterministic: candidates are ranked by cut depth
 * (later cuts cover more of the circuit), then by check strength
 * (entanglement > superposition > classical), then by target qubit;
 * per-qubit classical candidates collapse to the deepest one. The
 * returned specs carry "auto:" labels and ascending insertAt.
 */
std::vector<AssertionSpec>
generateAssertions(const analysis::CircuitAnalysis &analysis,
                   const AutoAssertOptions &options = {});

/** Run analyzeCircuit and publish the result on the context. */
class AnalyzePass : public Pass
{
  public:
    std::string name() const override { return "analyze"; }
    std::string describe() const override;
    void run(CompileContext &ctx) const override;
};

/**
 * Inject automatically generated checks (plus any user specs) into
 * the working circuit. Consumes the AnalyzePass result when present,
 * otherwise analyzes on the spot.
 */
class AutoAssertPass : public Pass
{
  public:
    AutoAssertPass(std::vector<AssertionSpec> user_specs,
                   InstrumentOptions instrument_options,
                   AutoAssertOptions options)
        : userSpecs_(std::move(user_specs)),
          instrumentOptions_(instrument_options), options_(options)
    {
    }

    std::string name() const override { return "auto-assert"; }
    std::uint64_t fingerprint(std::uint64_t h) const override;
    std::string describe() const override;
    void run(CompileContext &ctx) const override;

  private:
    std::vector<AssertionSpec> userSpecs_;
    InstrumentOptions instrumentOptions_;
    AutoAssertOptions options_;
};

} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_ANALYSIS_AUTO_ASSERT_HH
