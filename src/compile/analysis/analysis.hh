/**
 * @file
 * Static circuit analysis: a forward abstract interpretation over the
 * circuit IR with three cooperating domains.
 *
 *  1. Stabilizer-prefix tracker — the Clifford prefix of each qubit
 *     group is simulated on an Aaronson-Gottesman tableau
 *     (StabilizerState); a group is abandoned lazily at its first
 *     non-Clifford gate (or measurement/reset), and a GroupFact is
 *     emitted at that cut point classifying the group's state
 *     (known basis value, uniform superposition, GHZ-class pair).
 *
 *  2. Separability partition — union-find over qubit interaction,
 *     split-aware: consecutive gate runs on one qubit pair are
 *     multiplied out and classified with kernels::classify2q, so a
 *     CX·CX cancellation (or a run collapsing to a SWAP or a
 *     separable diagonal) never merges the groups. SWAP/permutation
 *     effects are tracked exactly through a wire->slot indirection,
 *     and measurement/reset return a wire to its own group.
 *
 *  3. Known-basis-state frontier — constant propagation of classical
 *     bit values from |0...0> through X/Y/SWAP/CX/CCX/diagonal gates
 *     (which survive non-Clifford diagonals like T where the tableau
 *     gives up).
 *
 * The facts power AutoAssertPass (derive and place the paper's
 * assertion checks with zero annotation) and the lint pass.
 */

#ifndef QRA_COMPILE_ANALYSIS_ANALYSIS_HH
#define QRA_COMPILE_ANALYSIS_ANALYSIS_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "circuit/circuit.hh"

namespace qra {
namespace compile {
namespace analysis {

/** Classification of one qubit group at a cut point. */
enum class GroupState
{
    /** Every qubit deterministic; `basisBits` holds the values. */
    KnownBasis,
    /** Single qubit in |+> or |-> (`minusPhase` distinguishes). */
    UniformSuperposition,
    /**
     * GHZ-class complement-pair state a|x> + b|~x>: every even-size
     * subset parity is fixed, so the paper's entanglement check
     * passes deterministically. `oddParity` is set for the 2-qubit
     * odd-parity (Psi) pair; even parity otherwise (x = 0...0/1...1).
     */
    GhzLike,
    /** Anything else the tableau could not put a name to. */
    Other,
};

/** Printable name of a group state. */
const char *groupStateName(GroupState state);

/**
 * One qubit group's state at the cut point where its Clifford prefix
 * ended (first non-Clifford gate, first measurement/reset, or the end
 * of the circuit). A check inserted at `cutIndex` runs after every
 * instruction of the prefix and before whatever ended it.
 */
struct GroupFact
{
    /** Group members (payload wire indices), ascending. */
    std::vector<Qubit> qubits;
    /** Payload instruction index the facts hold *before*. */
    std::size_t cutIndex = 0;
    /** Clifford gates the tableau applied to this group. */
    std::size_t prefixGates = 0;
    GroupState state = GroupState::Other;
    /** KnownBasis: bit j = deterministic value of qubits[j]. */
    std::uint64_t basisBits = 0;
    /** UniformSuperposition: true for |->, false for |+>. */
    bool minusPhase = false;
    /** GhzLike: true for the 2-qubit odd-parity pair. */
    bool oddParity = false;
};

/**
 * A known-basis frontier candidate: qubit `qubit` provably holds
 * basis value `value` up to (not including) payload instruction
 * `cutIndex`, after `opsTouched` unitary gates acted on it.
 */
struct FrontierFact
{
    Qubit qubit = 0;
    std::size_t cutIndex = 0;
    int value = 0;
    std::size_t opsTouched = 0;
};

/** Per-qubit observation/lifecycle timeline used by the lint pass. */
struct QubitTimeline
{
    static constexpr std::size_t kNever = static_cast<std::size_t>(-1);

    /** Unitary gates touching the qubit. */
    std::size_t gateCount = 0;
    std::size_t firstMeasure = kNever;
    std::size_t lastMeasure = kNever;
    /** First 2q gate on a collapsed (measured, un-reset) qubit. */
    std::size_t reuseWithoutReset = kNever;
    bool everReset = false;
    bool everPostSelected = false;
};

/** Everything one forward pass over the circuit established. */
struct CircuitAnalysis
{
    std::size_t numQubits = 0;
    std::size_t numOps = 0;

    /** Cut-point facts, ascending cutIndex. */
    std::vector<GroupFact> facts;

    /** Known-basis frontier candidates (at most a few per qubit). */
    std::vector<FrontierFact> frontier;

    /** Final separability partition, one sorted group per entry. */
    std::vector<std::vector<Qubit>> finalGroups;

    /** Total Clifford gates the tableau executed across all groups. */
    std::size_t cliffordPrefixGates = 0;

    std::vector<QubitTimeline> timeline;

    /**
     * Partition snapshot per instruction boundary:
     * partitionAt[i][q] is the smallest wire index in q's group
     * *before* instruction i (i in [0, numOps]). Two qubits are
     * provably unentangled at boundary i iff their ids differ.
     * Precision note: inside a cancelling gate run (e.g. between the
     * two gates of a CX·CX pair) the snapshot reports the run's net
     * effect, i.e. the qubits stay split.
     */
    std::vector<std::vector<std::uint32_t>> partitionAt;

    /** Group id (smallest member wire) of @p q at boundary @p i. */
    std::uint32_t groupIdAt(std::size_t i, Qubit q) const;
};

/**
 * Run the three-domain forward analysis over @p circuit.
 * Deterministic: equal circuits produce equal analyses.
 */
CircuitAnalysis analyzeCircuit(const Circuit &circuit);

} // namespace analysis
} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_ANALYSIS_ANALYSIS_HH
