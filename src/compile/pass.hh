/**
 * @file
 * The compile-pass interface and the shared CompileContext.
 *
 * A Pass is one stage of the compile pipeline (decompose, layout,
 * route, inject assertions, ...). Passes communicate exclusively
 * through the CompileContext: the working circuit, the evolving
 * device layout, assertion bookkeeping, and per-pass statistics. The
 * PassManager runs passes in order and derives a stable pipeline
 * fingerprint from each pass's name and configuration, which the
 * runtime uses as (part of) its preparation-cache key.
 */

#ifndef QRA_COMPILE_PASS_HH
#define QRA_COMPILE_PASS_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "assertions/injector.hh"
#include "circuit/circuit.hh"
#include "transpile/coupling_map.hh"
#include "transpile/layout.hh"

namespace qra {
namespace compile {

namespace analysis {
struct CircuitAnalysis;
} // namespace analysis

/** Statistics one pass execution leaves behind. */
struct PassStats
{
    std::string name;
    /** Wall-clock seconds the pass took. */
    double seconds = 0.0;
    std::size_t opsBefore = 0;
    std::size_t opsAfter = 0;
    /** Optional one-line detail, e.g. "2 swaps inserted". */
    std::string note;
};

/** Shared state threaded through a pipeline run. */
struct CompileContext
{
    /** The circuit being compiled (passes rewrite it in place). */
    Circuit circuit{1};

    /** Target device connectivity; null for device-free pipelines. */
    const CouplingMap *coupling = nullptr;

    /** Virtual->physical assignment chosen by a layout pass. */
    std::optional<Layout> initialLayout;

    /** Layout after routing (tracks inserted SWAPs). */
    std::optional<Layout> finalLayout;

    /**
     * Set by injection passes; decode bookkeeping for Results.
     * Mutable shared ownership so single-purpose pipelines (the
     * instrument() wrapper) can move the result out instead of
     * deep-copying; long-lived holders (the JobQueue cache) store it
     * as a pointer-to-const.
     */
    std::shared_ptr<InstrumentedCircuit> instrumented;

    // Aggregate transpile statistics (mirrors TranspileResult).
    std::size_t insertedSwaps = 0;
    std::size_t reversedCx = 0;
    std::size_t cancelledGates = 0;
    std::size_t mergedRotations = 0;

    /**
     * Static-analysis result published by AnalyzePass; null when the
     * pipeline has no analysis stage. Shared with the JobQueue cache
     * so repeated submissions reuse the facts.
     */
    std::shared_ptr<const analysis::CircuitAnalysis> analysis;

    /** One entry per executed pass, in pipeline order. */
    std::vector<PassStats> passStats;

    /**
     * Set by the running pass to annotate its own PassStats entry
     * (the PassManager moves it into place after the pass returns).
     */
    std::string pendingNote;

    /** Human-readable warnings passes want surfaced. */
    std::vector<std::string> diagnostics;
};

/** One composable stage of the compile pipeline. */
class Pass
{
  public:
    virtual ~Pass() = default;

    /** Stable identifier, e.g. "route"; used in dumps and stats. */
    virtual std::string name() const = 0;

    /**
     * Fold this pass's configuration into fingerprint state @p h.
     * Two pass instances that transform circuits identically must
     * produce the same fold; anything that changes the output (an
     * option, an assertion spec) must change it. The default folds
     * nothing beyond the name (which the PassManager adds).
     */
    virtual std::uint64_t fingerprint(std::uint64_t h) const
    {
        return h;
    }

    /** One-line configuration summary for --dump-pipeline. */
    virtual std::string describe() const { return name(); }

    /** Transform @p ctx. @throws Error subclasses on invalid input. */
    virtual void run(CompileContext &ctx) const = 0;
};

using PassPtr = std::shared_ptr<const Pass>;

} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_PASS_HH
