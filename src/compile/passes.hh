/**
 * @file
 * The concrete compile passes: the five transpiler stages
 * (decompose, layout, route, direction-fix, optimise) re-expressed
 * over the Pass interface, assertion instrumentation as a pass, and
 * the post-layout connectivity-aware injection pass this architecture
 * unlocks (ancillas allocated on physical qubits adjacent to their
 * targets, so the router inserts far fewer SWAPs than the legacy
 * inject-then-transpile order).
 */

#ifndef QRA_COMPILE_PASSES_HH
#define QRA_COMPILE_PASSES_HH

#include "assertions/injector.hh"
#include "compile/pass.hh"
#include "transpile/decomposer.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace compile {

/** Gate decomposition (SWAP/CCX/controlled-Pauli lowering). */
class DecomposePass : public Pass
{
  public:
    explicit DecomposePass(DecomposeOptions options)
        : options_(options)
    {
    }

    std::string name() const override { return "decompose"; }
    std::uint64_t fingerprint(std::uint64_t h) const override;
    std::string describe() const override;
    void run(CompileContext &ctx) const override;

  private:
    DecomposeOptions options_;
};

/** Initial virtual->physical placement (greedy or trivial). */
class LayoutPass : public Pass
{
  public:
    explicit LayoutPass(bool greedy) : greedy_(greedy) {}

    std::string name() const override { return "layout"; }
    std::uint64_t fingerprint(std::uint64_t h) const override;
    std::string describe() const override;
    void run(CompileContext &ctx) const override;

  private:
    bool greedy_;
};

/** SWAP insertion until every 2q gate is on a coupled pair. */
class RoutingPass : public Pass
{
  public:
    std::string name() const override { return "route"; }
    void run(CompileContext &ctx) const override;
};

/** CNOT orientation fixing against directed couplings. */
class DirectionFixPass : public Pass
{
  public:
    std::string name() const override { return "direction-fix"; }
    void run(CompileContext &ctx) const override;
};

/** Peephole cancellation and rotation merging. */
class OptimizePass : public Pass
{
  public:
    std::string name() const override { return "optimize"; }
    void run(CompileContext &ctx) const override;
};

/**
 * Legacy (pre-layout) assertion instrumentation: weave checks into
 * the working circuit over *virtual* qubits; ancillas are appended
 * above the payload register and participate in any later layout and
 * routing like ordinary qubits.
 */
class InstrumentPass : public Pass
{
  public:
    InstrumentPass(std::vector<AssertionSpec> specs,
                   InstrumentOptions options)
        : specs_(std::move(specs)), options_(options)
    {
    }

    std::string name() const override { return "instrument"; }
    std::uint64_t fingerprint(std::uint64_t h) const override;
    std::string describe() const override;
    void run(CompileContext &ctx) const override;

  private:
    std::vector<AssertionSpec> specs_;
    InstrumentOptions options_;
};

/**
 * Post-layout connectivity-aware assertion injection, interleaved
 * with routing.
 *
 * Requires a coupling map and an initial layout in the context
 * (i.e. runs after LayoutPass), and subsumes RoutingPass: it weaves
 * the checks into the payload, then routes the combined gate stream
 * with a *partial* layout in which ancilla wires stay unbound until
 * routing reaches their check; at that moment each ancilla binds to
 * the free physical qubit nearest its targets' current (post-SWAP)
 * positions, found by breadth-first search over the coupling graph.
 * Target-ancilla CNOTs therefore start on (or next to) native edges
 * no matter how far routing has dragged the targets — the legacy
 * inject-then-transpile order fixes ancilla placement before any
 * SWAP exists and strands ancillas as the layout drifts.
 */
class PostLayoutInjectPass : public Pass
{
  public:
    PostLayoutInjectPass(std::vector<AssertionSpec> specs,
                         InstrumentOptions options)
        : specs_(std::move(specs)), options_(options)
    {
    }

    std::string name() const override { return "inject-postlayout"; }
    std::uint64_t fingerprint(std::uint64_t h) const override;
    std::string describe() const override;
    void run(CompileContext &ctx) const override;

  private:
    std::vector<AssertionSpec> specs_;
    InstrumentOptions options_;
};

/**
 * Stable semantic fingerprint of one assertion spec: assertion kind,
 * shape and description plus targets, insertion point and repetition
 * count. Two specs with equal fingerprints instrument identically, so
 * the preparation cache can key on this instead of object identity
 * (semantically identical resubmissions hit; a recycled pointer can
 * never alias a different assertion).
 */
std::uint64_t foldAssertionSpec(std::uint64_t h,
                                const AssertionSpec &spec);

/** Fingerprint fold of the instrumentation knobs. */
std::uint64_t foldInstrumentOptions(std::uint64_t h,
                                    const InstrumentOptions &options);

} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_PASSES_HH
