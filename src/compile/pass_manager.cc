#include "compile/pass_manager.hh"

#include <sstream>

#include "common/hash.hh"
#include "obs/trace.hh"

namespace qra {
namespace compile {

PassManager &
PassManager::add(PassPtr pass)
{
    passes_.push_back(std::move(pass));
    return *this;
}

std::vector<std::string>
PassManager::passNames() const
{
    std::vector<std::string> names;
    names.reserve(passes_.size());
    for (const PassPtr &pass : passes_)
        names.push_back(pass->name());
    return names;
}

std::uint64_t
PassManager::fingerprint() const
{
    std::uint64_t h = kFnv1aOffset;
    h = fnv1aMix64(h, passes_.size());
    for (const PassPtr &pass : passes_) {
        h = fnv1aMixString(h, pass->name());
        h = pass->fingerprint(h);
    }
    return h;
}

std::string
PassManager::describe() const
{
    std::ostringstream os;
    os << "pipeline (" << passes_.size() << " pass"
       << (passes_.size() == 1 ? "" : "es") << "):\n";
    for (std::size_t i = 0; i < passes_.size(); ++i)
        os << "  " << i + 1 << ". " << passes_[i]->describe() << "\n";
    os << "fingerprint: " << std::hex << fingerprint() << std::dec;
    return os.str();
}

void
PassManager::run(CompileContext &ctx) const
{
    for (const PassPtr &pass : passes_) {
        PassStats stats;
        stats.name = pass->name();
        stats.opsBefore = ctx.circuit.size();
        // One timing source of truth: the span both measures
        // PassStats.seconds and (when tracing) publishes the
        // per-pass `pass:<name>` trace event.
        obs::TimedSpan span("compile", "pass:" + stats.name,
                            {{"ops_before", stats.opsBefore}});
        pass->run(ctx);
        stats.opsAfter = ctx.circuit.size();
        span.arg("ops_after", stats.opsAfter);
        stats.seconds = span.stop();
        stats.note = std::move(ctx.pendingNote);
        ctx.pendingNote.clear();
        ctx.passStats.push_back(std::move(stats));
    }
}

CompileContext
PassManager::run(Circuit circuit, const CouplingMap *coupling) const
{
    CompileContext ctx;
    ctx.circuit = std::move(circuit);
    ctx.coupling = coupling;
    run(ctx);
    return ctx;
}

} // namespace compile
} // namespace qra
