#include "compile/passes.hh"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/error.hh"
#include "common/hash.hh"
#include "transpile/direction_fixer.hh"
#include "transpile/optimizer.hh"
#include "transpile/router.hh"

namespace qra {
namespace compile {

namespace {

const CouplingMap &
requireCoupling(const CompileContext &ctx, const char *pass)
{
    if (ctx.coupling == nullptr)
        throw TranspileError(std::string(pass) +
                             " requires a coupling map");
    return *ctx.coupling;
}

} // namespace

// --- DecomposePass ---------------------------------------------------

std::uint64_t
DecomposePass::fingerprint(std::uint64_t h) const
{
    return fnv1aMix64(h, (options_.decomposeSwap ? 1u : 0u) |
                             (options_.decomposeCcx ? 2u : 0u) |
                             (options_.decomposeControlledPaulis ? 4u
                                                                 : 0u));
}

std::string
DecomposePass::describe() const
{
    std::string out = "decompose (";
    out += options_.decomposeSwap ? "swap " : "";
    out += options_.decomposeCcx ? "ccx " : "";
    out += options_.decomposeControlledPaulis ? "cpauli " : "";
    if (out.back() == ' ')
        out.pop_back();
    return out + ")";
}

void
DecomposePass::run(CompileContext &ctx) const
{
    ctx.circuit = decompose(ctx.circuit, options_);
}

// --- LayoutPass ------------------------------------------------------

std::uint64_t
LayoutPass::fingerprint(std::uint64_t h) const
{
    return fnv1aMix64(h, greedy_ ? 1u : 0u);
}

std::string
LayoutPass::describe() const
{
    return greedy_ ? "layout (greedy)" : "layout (trivial)";
}

void
LayoutPass::run(CompileContext &ctx) const
{
    const CouplingMap &map = requireCoupling(ctx, "layout");
    ctx.initialLayout = greedy_ ? greedyLayout(ctx.circuit, map)
                                : trivialLayout(ctx.circuit, map);
}

// --- RoutingPass -----------------------------------------------------

void
RoutingPass::run(CompileContext &ctx) const
{
    const CouplingMap &map = requireCoupling(ctx, "route");
    if (!ctx.initialLayout)
        ctx.initialLayout = trivialLayout(ctx.circuit, map);
    RoutedCircuit routed =
        routeCircuit(ctx.circuit, map, *ctx.initialLayout);
    ctx.insertedSwaps += routed.insertedSwaps;
    ctx.pendingNote =
        std::to_string(routed.insertedSwaps) + " swaps inserted";
    ctx.finalLayout = std::move(routed.finalLayout);
    ctx.circuit = std::move(routed.circuit);
}

// --- DirectionFixPass ------------------------------------------------

void
DirectionFixPass::run(CompileContext &ctx) const
{
    const CouplingMap &map = requireCoupling(ctx, "direction-fix");
    DirectionFixResult fixed = fixDirections(ctx.circuit, map);
    ctx.reversedCx += fixed.reversedCx;
    ctx.pendingNote =
        std::to_string(fixed.reversedCx) + " cx reversed";
    ctx.circuit = std::move(fixed.circuit);
}

// --- OptimizePass ----------------------------------------------------

void
OptimizePass::run(CompileContext &ctx) const
{
    OptimizeResult opt = optimizeCircuit(ctx.circuit);
    ctx.cancelledGates += opt.cancelledGates;
    ctx.mergedRotations += opt.mergedRotations;
    ctx.pendingNote = std::to_string(opt.cancelledGates) +
                      " cancelled, " +
                      std::to_string(opt.mergedRotations) + " merged";
    ctx.circuit = std::move(opt.circuit);
}

// --- Assertion fingerprint folds ------------------------------------

std::uint64_t
foldAssertionSpec(std::uint64_t h, const AssertionSpec &spec)
{
    if (!spec.assertion)
        throw AssertionError("spec without an assertion");
    h = fnv1aMix64(h,
                   static_cast<std::uint64_t>(spec.assertion->kind()));
    h = fnv1aMix64(h, spec.assertion->numTargets());
    h = fnv1aMix64(h, spec.assertion->numAncillas());
    // Emit the check into a scratch circuit with canonical operand
    // numbering and fold its semantic hash: this captures the exact
    // gates the assertion produces (including full-precision
    // parameters, which describe() strings truncate), so two specs
    // fold equal iff they instrument identically.
    const std::size_t num_targets = spec.assertion->numTargets();
    const std::size_t num_ancillas = spec.assertion->numAncillas();
    Circuit scratch(num_targets + num_ancillas, num_ancillas);
    std::vector<Qubit> targets(num_targets);
    std::vector<Qubit> ancillas(num_ancillas);
    std::vector<Clbit> clbits(num_ancillas);
    for (std::size_t j = 0; j < num_targets; ++j)
        targets[j] = static_cast<Qubit>(j);
    for (std::size_t j = 0; j < num_ancillas; ++j) {
        ancillas[j] = static_cast<Qubit>(num_targets + j);
        clbits[j] = static_cast<Clbit>(j);
    }
    spec.assertion->emit(scratch, targets, ancillas, clbits);
    h = fnv1aMix64(h, scratch.hash());
    h = fnv1aMix64(h, spec.targets.size());
    for (const Qubit q : spec.targets)
        h = fnv1aMix64(h, q);
    h = fnv1aMix64(h, spec.insertAt);
    h = fnv1aMix64(h, spec.repetitions);
    // The label never reaches the executed circuit, but it is stored
    // in the cached bookkeeping and printed by AssertionReport — a
    // label-only difference must re-prepare rather than surface the
    // cached submission's label.
    h = fnv1aMixString(h, spec.label);
    return h;
}

std::uint64_t
foldInstrumentOptions(std::uint64_t h, const InstrumentOptions &options)
{
    return fnv1aMix64(h, (options.reuseAncillas ? 1u : 0u) |
                             (options.barriers ? 2u : 0u));
}

namespace {

std::uint64_t
foldInjectionConfig(std::uint64_t h,
                    const std::vector<AssertionSpec> &specs,
                    const InstrumentOptions &options)
{
    h = foldInstrumentOptions(h, options);
    h = fnv1aMix64(h, specs.size());
    for (const AssertionSpec &spec : specs)
        h = foldAssertionSpec(h, spec);
    return h;
}

std::string
describeInjection(const std::string &name,
                  const std::vector<AssertionSpec> &specs,
                  const InstrumentOptions &options)
{
    std::string out = name + " (" + std::to_string(specs.size()) +
                      (specs.size() == 1 ? " check" : " checks");
    if (options.reuseAncillas)
        out += ", reuse-ancillas";
    if (!options.barriers)
        out += ", no-barriers";
    return out + ")";
}

} // namespace

// --- InstrumentPass --------------------------------------------------

std::uint64_t
InstrumentPass::fingerprint(std::uint64_t h) const
{
    return foldInjectionConfig(h, specs_, options_);
}

std::string
InstrumentPass::describe() const
{
    return describeInjection(name(), specs_, options_);
}

void
InstrumentPass::run(CompileContext &ctx) const
{
    auto inst = std::make_shared<InstrumentedCircuit>(
        detail::weaveAssertions(ctx.circuit, specs_, options_));
    ctx.circuit = inst->circuit();
    ctx.instrumented = std::move(inst);
}

// --- PostLayoutInjectPass --------------------------------------------

std::uint64_t
PostLayoutInjectPass::fingerprint(std::uint64_t h) const
{
    return foldInjectionConfig(h, specs_, options_);
}

std::string
PostLayoutInjectPass::describe() const
{
    return describeInjection(name(), specs_, options_);
}

void
PostLayoutInjectPass::run(CompileContext &ctx) const
{
    const CouplingMap &map = requireCoupling(ctx, "inject-postlayout");
    if (!ctx.initialLayout)
        throw TranspileError(
            "inject-postlayout must run after a layout pass");
    if (!map.isConnected())
        throw TranspileError("coupling map is not connected");

    const std::size_t payload_qubits = ctx.circuit.numQubits();

    auto inst = std::make_shared<InstrumentedCircuit>(
        detail::weaveAssertions(ctx.circuit, specs_, options_));

    // Weaving happened on the raw payload (insertAt indexes payload
    // instructions), so lower CCX — the payload's and any the
    // assertions emitted — before routing.
    DecomposeOptions ccx_opts;
    ccx_opts.decomposeSwap = false;
    ccx_opts.decomposeCcx = true;
    const Circuit woven = decompose(inst->circuit(), ccx_opts);

    const std::size_t total_qubits = woven.numQubits();
    if (total_qubits > map.numQubits())
        throw TranspileError(
            "payload plus assertion ancillas exceed the device");

    // Which targets each ancilla wire serves (first check wins when
    // the reuse option shares one pool across checks).
    std::vector<std::vector<Qubit>> targets_of(total_qubits);
    for (const InstrumentedCircuit::Check &check : inst->checks())
        for (const Qubit a : check.ancillas)
            if (targets_of[a].empty())
                targets_of[a] = check.spec.targets;

    // Route with a *partial* layout: payload qubits start at the
    // layout pass's slots, ancilla wires stay unbound until their
    // check is reached in the gate stream, then bind to the free
    // physical qubit nearest the targets' *current* (post-SWAP)
    // positions. Binding at check time is what the legacy
    // inject-then-transpile order cannot do: there, ancillas are
    // placed before routing and layout drift strands them.
    constexpr Qubit kNone = std::numeric_limits<Qubit>::max();
    std::vector<Qubit> v2p(total_qubits, kNone);
    std::vector<Qubit> p2v(map.numQubits(), kNone); // kNone = spare
    for (Qubit v = 0; v < payload_qubits; ++v) {
        const Qubit p = ctx.initialLayout->physical(v);
        v2p[v] = p;
        p2v[p] = v;
    }

    std::size_t placed = 0;
    std::size_t adjacent = 0;

    // Free slot nearest to any of @p sources: multi-source BFS over
    // the undirected coupling graph, deterministic in the map's edge
    // order; lowest free index when the sources are unreachable.
    auto nearest_free = [&](const std::vector<Qubit> &sources) {
        std::vector<bool> visited(map.numQubits(), false);
        std::deque<Qubit> frontier;
        for (const Qubit s : sources) {
            if (s < map.numQubits() && !visited[s]) {
                visited[s] = true;
                frontier.push_back(s);
            }
        }
        while (!frontier.empty()) {
            const Qubit q = frontier.front();
            frontier.pop_front();
            if (p2v[q] == kNone)
                return q;
            for (const Qubit nb : map.neighbors(q)) {
                if (!visited[nb]) {
                    visited[nb] = true;
                    frontier.push_back(nb);
                }
            }
        }
        for (Qubit p = 0; p < map.numQubits(); ++p)
            if (p2v[p] == kNone)
                return p;
        throw TranspileError("no free physical qubit for an ancilla");
    };

    auto bind = [&](Qubit a) {
        std::vector<Qubit> sources;
        for (const Qubit t : targets_of[a])
            if (t < total_qubits && v2p[t] != kNone)
                sources.push_back(v2p[t]);
        const Qubit p = nearest_free(sources);
        v2p[a] = p;
        p2v[p] = a;
        ++placed;
        if (std::any_of(sources.begin(), sources.end(),
                        [&](Qubit s) { return map.connected(p, s); }))
            ++adjacent;
    };

    Circuit routed(map.numQubits(), woven.numClbits(),
                   woven.name() + "_routed");
    std::size_t swaps = 0;

    for (const Operation &op : woven.ops()) {
        for (const Qubit q : op.qubits)
            if (v2p[q] == kNone)
                bind(q);

        Operation mapped = op;
        if (op.qubits.size() == 2 && opIsUnitary(op.kind)) {
            Qubit pa = v2p[op.qubits[0]];
            Qubit pb = v2p[op.qubits[1]];
            if (!map.connected(pa, pb)) {
                const std::vector<Qubit> path =
                    map.shortestPath(pa, pb);
                QRA_ASSERT(path.size() >= 3,
                           "shortest path too short for disconnected "
                           "pair");
                for (std::size_t i = 0; i + 2 < path.size(); ++i) {
                    routed.swap(path[i], path[i + 1]);
                    ++swaps;
                    const Qubit va = p2v[path[i]];
                    const Qubit vb = p2v[path[i + 1]];
                    if (va != kNone)
                        v2p[va] = path[i + 1];
                    if (vb != kNone)
                        v2p[vb] = path[i];
                    std::swap(p2v[path[i]], p2v[path[i + 1]]);
                }
                pa = v2p[op.qubits[0]];
                pb = v2p[op.qubits[1]];
                QRA_ASSERT(map.connected(pa, pb),
                           "routing failed to connect operands");
            }
            mapped.qubits = {pa, pb};
        } else {
            for (Qubit &q : mapped.qubits)
                q = v2p[q];
        }
        routed.append(std::move(mapped));
    }

    // Total final layout: bound wires keep their slots, everything
    // else (unbound spares, the device's unused wires) fills the
    // leftover slots in index order.
    std::vector<Qubit> final_v2p(map.numQubits(), kNone);
    std::vector<bool> used(map.numQubits(), false);
    for (Qubit v = 0; v < total_qubits; ++v) {
        if (v2p[v] != kNone) {
            final_v2p[v] = v2p[v];
            used[v2p[v]] = true;
        }
    }
    Qubit next_free = 0;
    for (Qubit v = 0; v < map.numQubits(); ++v) {
        if (final_v2p[v] != kNone)
            continue;
        while (used[next_free])
            ++next_free;
        final_v2p[v] = next_free;
        used[next_free] = true;
    }

    ctx.insertedSwaps += swaps;
    ctx.finalLayout = Layout(std::move(final_v2p));
    ctx.circuit = std::move(routed);
    ctx.instrumented = std::move(inst);
    ctx.pendingNote = std::to_string(placed) + " ancillas bound (" +
                      std::to_string(adjacent) +
                      " adjacent at bind time), " +
                      std::to_string(swaps) + " swaps inserted";
}

} // namespace compile
} // namespace qra
