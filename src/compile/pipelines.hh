/**
 * @file
 * Canonical pipelines: the declarative recipes behind transpile(),
 * instrument() and the runtime's JobQueue::prepare. Call sites build
 * a PassManager from options instead of hardcoding stage order, and
 * key caches on PassManager::fingerprint().
 */

#ifndef QRA_COMPILE_PIPELINES_HH
#define QRA_COMPILE_PIPELINES_HH

#include <vector>

#include "assertions/injector.hh"
#include "compile/analysis/auto_assert.hh"
#include "compile/pass_manager.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace compile {

/** Where assertion checks enter the compile pipeline. */
enum class InjectionStrategy
{
    /**
     * Legacy order: weave checks over virtual qubits first, then
     * transpile the instrumented circuit. Ancillas are anonymous
     * extra qubits to layout and routing.
     */
    PreLayout,

    /**
     * Inject after the payload layout is chosen, pinning each ancilla
     * to a free physical qubit adjacent to its targets (BFS over the
     * coupling graph). Reduces the SWAPs routing must insert for
     * target-ancilla CNOTs. Degrades to PreLayout when the prepare
     * spec has no coupling map (there is no layout to exploit).
     */
    PostLayout,

    /**
     * Derive the checks statically instead of taking them from the
     * spec: AnalyzePass + AutoAssertPass run the three-domain
     * analysis (stabilizer prefix, separability, known-basis
     * frontier) and weave generated checks — plus any user specs —
     * before layout. See compile/analysis/auto_assert.hh.
     */
    AutoGenerate,
};

/**
 * The five-stage device pipeline behind transpile():
 * decompose(ccx) -> layout -> route -> decompose(swap) ->
 * direction-fix [-> optimize].
 */
PassManager transpilePipeline(const TranspileOptions &options = {});

/** The single-pass pipeline behind instrument(). */
PassManager instrumentPipeline(std::vector<AssertionSpec> specs,
                               const InstrumentOptions &options = {});

/** Everything JobQueue::prepare needs to build its pipeline. */
struct PrepareSpec
{
    std::vector<AssertionSpec> assertions;
    InstrumentOptions instrumentOptions;
    InjectionStrategy injection = InjectionStrategy::PreLayout;
    /** Budget for InjectionStrategy::AutoGenerate. */
    AutoAssertOptions autoAssert;
    /** Not owned; null = no device transpilation. */
    const CouplingMap *coupling = nullptr;
    TranspileOptions transpileOptions;
};

/**
 * Build the preparation pipeline for @p spec declaratively:
 * injection (pre- or post-layout) and device transpilation appear
 * only when the spec asks for them, so inert options can never
 * fragment a cache keyed on the pipeline fingerprint.
 */
PassManager preparePipeline(const PrepareSpec &spec);

/**
 * Run preparePipeline(spec) over @p payload, reproducing the legacy
 * inject-then-transpile naming ("payload+asserts@5q") so prepared
 * circuits are bit-for-bit what the monolithic path produced.
 */
CompileContext prepare(Circuit payload, const PrepareSpec &spec);

/**
 * Same, over an already-built @p pipeline (must be
 * preparePipeline(spec)); lets callers that fingerprinted the
 * pipeline for a cache key reuse it instead of building it twice.
 */
CompileContext prepare(Circuit payload, const PrepareSpec &spec,
                       const PassManager &pipeline);

} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_PIPELINES_HH
