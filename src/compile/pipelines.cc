#include "compile/pipelines.hh"

#include "compile/passes.hh"

namespace qra {
namespace compile {

namespace {

/** decompose(ccx) — CCX must be lowered before routing. */
PassPtr
ccxLowering()
{
    DecomposeOptions opts;
    opts.decomposeSwap = false; // router inserts swaps; keep user's
    opts.decomposeCcx = true;
    return std::make_shared<DecomposePass>(opts);
}

/** decompose(swap) — lower router-inserted SWAPs to CX triplets. */
PassPtr
swapLowering()
{
    DecomposeOptions opts;
    opts.decomposeSwap = true;
    opts.decomposeCcx = false;
    return std::make_shared<DecomposePass>(opts);
}

/** The post-routing device stages shared by every pipeline. */
void
addPostRoutingStages(PassManager &pm, const TranspileOptions &options)
{
    pm.add(swapLowering());
    pm.add(std::make_shared<DirectionFixPass>());
    if (options.optimize)
        pm.add(std::make_shared<OptimizePass>());
}

} // namespace

PassManager
transpilePipeline(const TranspileOptions &options)
{
    PassManager pm;
    pm.add(ccxLowering());
    pm.add(std::make_shared<LayoutPass>(options.useGreedyLayout));
    pm.add(std::make_shared<RoutingPass>());
    addPostRoutingStages(pm, options);
    return pm;
}

PassManager
instrumentPipeline(std::vector<AssertionSpec> specs,
                   const InstrumentOptions &options)
{
    PassManager pm;
    pm.add(std::make_shared<InstrumentPass>(std::move(specs), options));
    return pm;
}

PassManager
preparePipeline(const PrepareSpec &spec)
{
    PassManager pm;
    const bool autogen =
        spec.injection == InjectionStrategy::AutoGenerate;
    const bool inject = !autogen && !spec.assertions.empty();
    const bool post_layout =
        inject && spec.coupling != nullptr &&
        spec.injection == InjectionStrategy::PostLayout;

    if (autogen) {
        pm.add(std::make_shared<AnalyzePass>());
        pm.add(std::make_shared<AutoAssertPass>(
            spec.assertions, spec.instrumentOptions,
            spec.autoAssert));
    } else if (inject && !post_layout) {
        pm.add(std::make_shared<InstrumentPass>(
            spec.assertions, spec.instrumentOptions));
    }

    if (spec.coupling != nullptr) {
        if (post_layout) {
            // The layout is chosen on the raw payload so that
            // PostLayoutInjectPass can weave into it directly:
            // AssertionSpec::insertAt indexes *payload* instructions,
            // so weaving must precede any decomposition (the pass
            // CCX-lowers the woven circuit itself before routing).
            // The pass then routes with check-time ancilla binding.
            pm.add(std::make_shared<LayoutPass>(
                spec.transpileOptions.useGreedyLayout));
            pm.add(std::make_shared<PostLayoutInjectPass>(
                spec.assertions, spec.instrumentOptions));
        } else {
            pm.add(ccxLowering());
            pm.add(std::make_shared<LayoutPass>(
                spec.transpileOptions.useGreedyLayout));
            pm.add(std::make_shared<RoutingPass>());
        }
        addPostRoutingStages(pm, spec.transpileOptions);
    }
    return pm;
}

CompileContext
prepare(Circuit payload, const PrepareSpec &spec)
{
    return prepare(std::move(payload), spec, preparePipeline(spec));
}

CompileContext
prepare(Circuit payload, const PrepareSpec &spec,
        const PassManager &pipeline)
{
    // Legacy naming: instrumentation suffixes "+asserts", device
    // transpilation suffixes "@<n>q" on top of whatever entered it.
    std::string base_name =
        spec.assertions.empty() ? payload.name()
                                : payload.name() + "+asserts";

    CompileContext ctx =
        pipeline.run(std::move(payload), spec.coupling);
    // Auto-generated checks earn the suffix only once they exist.
    if (spec.assertions.empty() && ctx.instrumented &&
        !ctx.instrumented->checks().empty())
        base_name += "+asserts";
    if (spec.coupling != nullptr)
        ctx.circuit.setName(base_name + "@" +
                            std::to_string(spec.coupling->numQubits()) +
                            "q");
    return ctx;
}

} // namespace compile
} // namespace qra
