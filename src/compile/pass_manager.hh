/**
 * @file
 * PassManager: an ordered pipeline of compile passes with per-pass
 * timing/statistics collection and a stable pipeline fingerprint.
 */

#ifndef QRA_COMPILE_PASS_MANAGER_HH
#define QRA_COMPILE_PASS_MANAGER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "compile/pass.hh"

namespace qra {
namespace compile {

/** Runs passes in order over one shared CompileContext. */
class PassManager
{
  public:
    PassManager() = default;

    /** Append @p pass to the pipeline. */
    PassManager &add(PassPtr pass);

    std::size_t size() const { return passes_.size(); }
    const std::vector<PassPtr> &passes() const { return passes_; }

    /** Pass names in pipeline order. */
    std::vector<std::string> passNames() const;

    /**
     * Stable 64-bit fingerprint of the pipeline *recipe*: the ordered
     * pass names plus each pass's configuration fold. Equal
     * fingerprints mean equal transformations of any input circuit,
     * so the fingerprint (together with the circuit hash and device
     * data) can key a preparation cache. Deterministic across runs
     * and platforms; independent of the input circuit.
     */
    std::uint64_t fingerprint() const;

    /**
     * Multi-line pipeline description for --dump-pipeline: one line
     * per pass (name plus configuration) and the fingerprint.
     */
    std::string describe() const;

    /** Run every pass over @p ctx in order, recording PassStats. */
    void run(CompileContext &ctx) const;

    /** Convenience: build a context around @p circuit and run. */
    CompileContext run(Circuit circuit,
                       const CouplingMap *coupling = nullptr) const;

  private:
    std::vector<PassPtr> passes_;
};

} // namespace compile
} // namespace qra

#endif // QRA_COMPILE_PASS_MANAGER_HH
