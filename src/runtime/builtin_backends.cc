#include "runtime/builtin_backends.hh"

#include "common/error.hh"
#include "runtime/backend_registry.hh"
#include "sim/density_simulator.hh"
#include "sim/statevector_simulator.hh"
#include "sim/trajectory_simulator.hh"
#include "stabilizer/stabilizer_simulator.hh"

namespace qra {
namespace runtime {

namespace {

/** @throws SimulationError with the reject reason if unsupported. */
void
requireSupported(const Backend &backend, const Circuit &circuit,
                 const NoiseModel *noise)
{
    const std::string reason = backend.rejectReason(circuit, noise);
    if (!reason.empty())
        throw SimulationError(reason);
}

/**
 * CRTP-free boilerplate base: stores the name/capability constants so
 * each wrapper only implements run().
 */
class BuiltinBackend : public Backend
{
  public:
    BuiltinBackend(std::string name, BackendCapabilities caps)
        : name_(std::move(name)), caps_(caps)
    {
    }

    const std::string &name() const override { return name_; }
    const BackendCapabilities &capabilities() const override
    {
        return caps_;
    }

  private:
    std::string name_;
    BackendCapabilities caps_;
};

// State-vector memory is the ceiling: 2^26 amplitudes = 1 GiB of
// complex<double>, a sensible single-job cap for a shared host.
constexpr std::size_t kStatevectorMaxQubits = 26;
// The density matrix squares that cost: 2^13 x 2^13 doubles = 1 GiB.
constexpr std::size_t kDensityMaxQubits = 13;
// The tableau is O(n^2) bits; 4096 is the circuit IR's own limit.
constexpr std::size_t kStabilizerMaxQubits = 4096;

class StatevectorBackend final : public BuiltinBackend
{
  public:
    StatevectorBackend()
        : BuiltinBackend("statevector",
                         {.supportsNoise = false,
                          .supportsMidCircuitMeasurement = true,
                          .exactDistribution = false,
                          .cliffordOnly = false,
                          .maxQubits = kStatevectorMaxQubits,
                          .shardable = true})
    {
    }

    Result run(const Circuit &circuit, std::size_t shots,
               std::uint64_t seed,
               const NoiseModel *noise) const override
    {
        requireSupported(*this, circuit, noise);
        StatevectorSimulator sim(seed);
        return sim.run(circuit, shots);
    }
};

class DensityBackend final : public BuiltinBackend
{
  public:
    DensityBackend()
        : BuiltinBackend("density",
                         {.supportsNoise = true,
                          .supportsMidCircuitMeasurement = false,
                          .exactDistribution = true,
                          .cliffordOnly = false,
                          .maxQubits = kDensityMaxQubits,
                          .shardable = false})
    {
    }

    Result run(const Circuit &circuit, std::size_t shots,
               std::uint64_t seed,
               const NoiseModel *noise) const override
    {
        requireSupported(*this, circuit, noise);
        DensityMatrixSimulator sim(seed);
        sim.setNoiseModel(noise);
        return sim.run(circuit, shots);
    }
};

class TrajectoryBackend final : public BuiltinBackend
{
  public:
    TrajectoryBackend()
        : BuiltinBackend("trajectory",
                         {.supportsNoise = true,
                          .supportsMidCircuitMeasurement = true,
                          .exactDistribution = false,
                          .cliffordOnly = false,
                          .maxQubits = kStatevectorMaxQubits,
                          .shardable = true})
    {
    }

    Result run(const Circuit &circuit, std::size_t shots,
               std::uint64_t seed,
               const NoiseModel *noise) const override
    {
        requireSupported(*this, circuit, noise);
        TrajectorySimulator sim(seed);
        sim.setNoiseModel(noise);
        return sim.run(circuit, shots);
    }
};

class StabilizerBackend final : public BuiltinBackend
{
  public:
    StabilizerBackend()
        : BuiltinBackend("stabilizer",
                         {.supportsNoise = false,
                          .supportsMidCircuitMeasurement = true,
                          .exactDistribution = false,
                          .cliffordOnly = true,
                          .maxQubits = kStabilizerMaxQubits,
                          .shardable = true})
    {
    }

    Result run(const Circuit &circuit, std::size_t shots,
               std::uint64_t seed,
               const NoiseModel *noise) const override
    {
        requireSupported(*this, circuit, noise);
        StabilizerSimulator sim(seed);
        return sim.run(circuit, shots);
    }
};

} // namespace

BackendPtr
makeStatevectorBackend()
{
    return std::make_shared<StatevectorBackend>();
}

BackendPtr
makeDensityBackend()
{
    return std::make_shared<DensityBackend>();
}

BackendPtr
makeTrajectoryBackend()
{
    return std::make_shared<TrajectoryBackend>();
}

BackendPtr
makeStabilizerBackend()
{
    return std::make_shared<StabilizerBackend>();
}

void
registerBuiltinBackends(BackendRegistry &registry)
{
    registry.registerBackend("statevector", makeStatevectorBackend);
    registry.registerBackend("density", makeDensityBackend);
    registry.registerBackend("trajectory", makeTrajectoryBackend);
    registry.registerBackend("stabilizer", makeStabilizerBackend);
}

} // namespace runtime
} // namespace qra
