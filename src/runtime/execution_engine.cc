#include "runtime/execution_engine.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/rng.hh"
#include "sim/kernels/parallel.hh"

namespace qra {
namespace runtime {

ExecutionEngine::ExecutionEngine(EngineOptions options,
                                 BackendRegistry *registry)
    : options_(options),
      registry_(registry != nullptr ? registry
                                    : &BackendRegistry::global()),
      pool_(options.threads)
{
    if (options_.shardShots == 0)
        throw ValueError("EngineOptions.shardShots must be positive");
    if (options_.maxShards == 0)
        throw ValueError("EngineOptions.maxShards must be positive");
    if (options_.fusionLevel < kernels::kFusionNone ||
        options_.fusionLevel > kernels::kFusion2q)
        throw ValueError("EngineOptions.fusionLevel must be 0, 1 or 2");
}

ExecutionEngine::ExecutionEngine(std::size_t threads)
    : ExecutionEngine(EngineOptions{.threads = threads})
{
}

std::vector<Shard>
ExecutionEngine::shardPlan(std::size_t shots, std::uint64_t seed,
                           const Backend &backend) const
{
    std::size_t count = 1;
    if (backend.capabilities().shardable && shots > 0) {
        count = (shots + options_.shardShots - 1) / options_.shardShots;
        count = std::clamp<std::size_t>(count, 1, options_.maxShards);
    }
    std::vector<Shard> plan(count);
    const std::size_t base = shots / count;
    const std::size_t remainder = shots % count;
    for (std::size_t i = 0; i < count; ++i) {
        plan[i].shots = base + (i < remainder ? 1 : 0);
        plan[i].seed = splitSeed(seed, i);
    }
    return plan;
}

std::vector<std::future<Result>>
ExecutionEngine::dispatch(const Job &job, const BackendPtr &backend)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const std::string reason =
        backend->rejectReason(*job.circuit, job.noise);
    if (!reason.empty())
        throw SimulationError(reason);

    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);

    // Intra-shot lanes: leftover pool capacity divided across the
    // job's shards (or the explicit intraThreads knob), clamped to
    // the pool size. Lanes and shards share pool_, and a lane-waiting
    // shard helps drain the queue, so total concurrency never
    // exceeds the pool's worker count.
    std::size_t lanes = options_.intraThreads;
    if (lanes == 0)
        lanes = std::max<std::size_t>(
            1, pool_.size() / std::max<std::size_t>(1, plan.size()));
    lanes = std::min(lanes, pool_.size());

    std::vector<std::future<Result>> futures;
    for (const Shard &shard : plan) {
        futures.push_back(pool_.submit(
            [backend, circuit = job.circuit, noise = job.noise, shard,
             lanes, pool = &pool_, fusion = options_.fusionLevel,
             artifacts = job.artifacts]() {
                kernels::ParallelScope scope(pool, lanes);
                kernels::FusionScope fusion_scope(fusion);
                kernels::PlanCacheScope cache_scope(artifacts.get());
                return backend->run(*circuit, shard.shots, shard.seed,
                                    noise);
            }));
    }
    return futures;
}

Result
ExecutionEngine::run(const Job &job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    std::vector<std::future<Result>> futures = dispatch(job, backend);
    Result merged(job.circuit->numClbits());
    for (std::future<Result> &future : futures)
        merged.merge(future.get());
    return merged;
}

Result
ExecutionEngine::run(const Circuit &circuit, std::size_t shots,
                     const std::string &backend, std::uint64_t seed,
                     const NoiseModel *noise)
{
    return run(Job(circuit, shots, backend, seed, noise));
}

std::future<Result>
ExecutionEngine::submit(Job job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    // Shards go to the pool now; the merge is deferred to get() so a
    // waiting caller never occupies a pool thread.
    auto futures = std::make_shared<std::vector<std::future<Result>>>(
        dispatch(job, backend));
    const std::size_t num_clbits = job.circuit->numClbits();
    return std::async(std::launch::deferred, [futures, num_clbits]() {
        Result merged(num_clbits);
        for (std::future<Result> &future : *futures)
            merged.merge(future.get());
        return merged;
    });
}

AssertionReport
ExecutionEngine::runInstrumented(const InstrumentedCircuit &inst,
                                 std::size_t shots,
                                 const std::string &backend,
                                 std::uint64_t seed,
                                 const NoiseModel *noise,
                                 Result *result_out)
{
    const Result result =
        run(inst.circuit(), shots, backend, seed, noise);
    if (result_out != nullptr)
        *result_out = result;
    return analyze(inst, result);
}

} // namespace runtime
} // namespace qra
