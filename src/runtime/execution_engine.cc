#include "runtime/execution_engine.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/simd/dispatch.hh"

namespace qra {
namespace runtime {

namespace {

/** Registered-once handles for the engine's metrics. */
struct EngineMetrics
{
    obs::CounterHandle jobs;
    obs::CounterHandle shards;
    obs::CounterHandle shots;
    obs::CounterHandle waves;
    obs::CounterHandle adaptiveBudgetShots;
    obs::CounterHandle adaptiveShotsSaved;
    obs::HistogramHandle shardRunNs;
    obs::HistogramHandle shardQueueWaitNs;
};

const EngineMetrics &
engineMetrics()
{
    static const EngineMetrics metrics = []() {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        EngineMetrics m;
        m.jobs = reg.counter("engine.jobs");
        m.shards = reg.counter("engine.shards");
        m.shots = reg.counter("engine.shots");
        m.waves = reg.counter("engine.waves");
        m.adaptiveBudgetShots =
            reg.counter("engine.adaptive.budget_shots");
        m.adaptiveShotsSaved =
            reg.counter("engine.adaptive.shots_saved");
        m.shardRunNs = reg.histogram("engine.shard.run_ns");
        m.shardQueueWaitNs =
            reg.histogram("engine.shard.queue_wait_ns");
        return m;
    }();
    return metrics;
}

std::uint64_t
elapsedNs(obs::Tracer::Clock::time_point begin,
          obs::Tracer::Clock::time_point end)
{
    return end <= begin
               ? 0
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<
                         std::chrono::nanoseconds>(end - begin)
                         .count());
}

/** Invoke a user callback, logging instead of propagating throws. */
template <typename Callback, typename... Args>
void
invokeGuarded(const char *what, Callback &&callback, Args &&...args)
{
    try {
        callback(std::forward<Args>(args)...);
    } catch (const std::exception &e) {
        logWarn(std::string(what) + " threw: " + e.what());
    } catch (...) {
        logWarn(std::string(what) +
                " threw a non-standard exception");
    }
}

} // namespace

ExecutionEngine::ExecutionEngine(EngineOptions options,
                                 BackendRegistry *registry)
    : options_(options),
      registry_(registry != nullptr ? registry
                                    : &BackendRegistry::global()),
      pool_(options.threads)
{
    if (options_.shardShots == 0)
        throw ValueError("EngineOptions.shardShots must be positive");
    if (options_.maxShards == 0)
        throw ValueError("EngineOptions.maxShards must be positive");
    if (options_.fusionLevel < kernels::kFusionNone ||
        options_.fusionLevel > kernels::kFusion2q)
        throw ValueError("EngineOptions.fusionLevel must be 0, 1 or 2");
    if (options_.simdTier >
        static_cast<int>(kernels::simd::Tier::Avx512))
        throw ValueError(
            "EngineOptions.simdTier must be -1 (auto), 0 (scalar), "
            "1 (avx2) or 2 (avx512)");
}

ExecutionEngine::ExecutionEngine(std::size_t threads)
    : ExecutionEngine(EngineOptions{.threads = threads})
{
}

std::vector<Shard>
ExecutionEngine::shardPlan(std::size_t shots, std::uint64_t seed,
                           const Backend &backend) const
{
    std::size_t count = 1;
    if (backend.capabilities().shardable && shots > 0) {
        count = (shots + options_.shardShots - 1) / options_.shardShots;
        count = std::clamp<std::size_t>(count, 1, options_.maxShards);
    }
    std::vector<Shard> plan(count);
    const std::size_t base = shots / count;
    const std::size_t remainder = shots % count;
    for (std::size_t i = 0; i < count; ++i) {
        plan[i].shots = base + (i < remainder ? 1 : 0);
        plan[i].seed = splitSeed(seed, i);
    }
    return plan;
}

std::size_t
ExecutionEngine::checkAndLaneCount(const Job &job,
                                   const BackendPtr &backend,
                                   std::size_t shard_count) const
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const std::string reason =
        backend->rejectReason(*job.circuit, job.noise);
    if (!reason.empty())
        throw SimulationError(reason);

    // Intra-shot lanes: leftover pool capacity divided across the
    // job's shards (or the explicit intraThreads knob), clamped to
    // the pool size. Lanes and shards share pool_, and a lane-waiting
    // shard helps drain the queue, so total concurrency never
    // exceeds the pool's worker count.
    std::size_t lanes = options_.intraThreads;
    if (lanes == 0)
        lanes = std::max<std::size_t>(
            1,
            pool_.size() / std::max<std::size_t>(1, shard_count));
    return std::min(lanes, pool_.size());
}

std::function<Result()>
ExecutionEngine::shardRunner(const Job &job, const BackendPtr &backend,
                             const Shard &shard, std::size_t lanes)
{
    // The enqueue timestamp is only captured when telemetry is on:
    // the disabled path stays free of clock reads.
    const obs::Tracer::Clock::time_point enqueued =
        obs::anyEnabled() ? obs::Tracer::Clock::now()
                          : obs::Tracer::Clock::time_point{};
    return [backend, circuit = job.circuit, noise = job.noise, shard,
            lanes, pool = &pool_, fusion = options_.fusionLevel,
            simd_tier = options_.simdTier, artifacts = job.artifacts,
            enqueued]() {
        kernels::ParallelScope scope(pool, lanes);
        kernels::FusionScope fusion_scope(fusion);
        kernels::simd::TierScope tier_scope(simd_tier);
        kernels::PlanCacheScope cache_scope(artifacts.get());
        if (!obs::anyEnabled())
            return backend->run(*circuit, shard.shots, shard.seed,
                                noise);
        const auto start = obs::Tracer::Clock::now();
        const std::uint64_t wait_ns = elapsedNs(enqueued, start);
        Result part =
            backend->run(*circuit, shard.shots, shard.seed, noise);
        const auto end = obs::Tracer::Clock::now();
        obs::complete("engine", "shard", start, end,
                      {{"shots", shard.shots}, {"wait_ns", wait_ns}});
        const EngineMetrics &m = engineMetrics();
        obs::count(m.shards);
        obs::count(m.shots, shard.shots);
        obs::observe(m.shardRunNs, elapsedNs(start, end));
        obs::observe(m.shardQueueWaitNs, wait_ns);
        return part;
    };
}

std::vector<std::future<Result>>
ExecutionEngine::dispatch(const Job &job, const BackendPtr &backend)
{
    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);
    const std::size_t lanes =
        checkAndLaneCount(job, backend, plan.size());

    std::vector<std::future<Result>> futures;
    for (const Shard &shard : plan)
        futures.push_back(
            pool_.submit(shardRunner(job, backend, shard, lanes)));
    return futures;
}

Result
ExecutionEngine::run(const Job &job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    std::vector<std::future<Result>> futures = dispatch(job, backend);
    Result merged(job.circuit->numClbits());
    for (std::future<Result> &future : futures)
        merged.merge(future.get());
    ExecStats stats;
    stats.shards = futures.size();
    stats.engineSeconds = std::chrono::duration<double>(
                              obs::Tracer::Clock::now() - start)
                              .count();
    merged.setExecStats(stats);
    return merged;
}

Result
ExecutionEngine::run(const Circuit &circuit, std::size_t shots,
                     const std::string &backend, std::uint64_t seed,
                     const NoiseModel *noise)
{
    return run(Job(circuit, shots, backend, seed, noise));
}

std::future<Result>
ExecutionEngine::submit(Job job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    // Shards go to the pool now; the merge is deferred to get() so a
    // waiting caller never occupies a pool thread.
    auto futures = std::make_shared<std::vector<std::future<Result>>>(
        dispatch(job, backend));
    const std::size_t num_clbits = job.circuit->numClbits();
    return std::async(std::launch::deferred, [futures, num_clbits,
                                              start]() {
        Result merged(num_clbits);
        for (std::future<Result> &future : *futures)
            merged.merge(future.get());
        ExecStats stats;
        stats.shards = futures->size();
        stats.engineSeconds = std::chrono::duration<double>(
                                  obs::Tracer::Clock::now() - start)
                                  .count();
        merged.setExecStats(stats);
        return merged;
    });
}

void
ExecutionEngine::submitAsync(Job job, Completion on_complete)
{
    if (!on_complete)
        throw ValueError("submitAsync requires a completion callback");
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start_time = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);
    const std::size_t lanes =
        checkAndLaneCount(job, backend, plan.size());

    // Shared completion state: the last shard to finish merges the
    // parts in shard order (bit-identical to run()) and invokes the
    // callback on its pool thread — no thread ever blocks in a join.
    struct AsyncState
    {
        std::mutex mutex;
        std::vector<Result> parts;
        std::size_t remaining;
        std::size_t numClbits;
        Completion callback;
        std::exception_ptr error;
        obs::Tracer::Clock::time_point start;
    };
    auto state = std::make_shared<AsyncState>();
    state->parts.assign(plan.size(), Result(job.circuit->numClbits()));
    state->remaining = plan.size();
    state->numClbits = job.circuit->numClbits();
    state->callback = std::move(on_complete);
    state->start = start_time;

    for (std::size_t i = 0; i < plan.size(); ++i) {
        pool_.submit([runner = shardRunner(job, backend, plan[i],
                                           lanes),
                      state, i]() {
            Result part(state->numClbits);
            std::exception_ptr error;
            try {
                part = runner();
            } catch (...) {
                error = std::current_exception();
            }
            bool last = false;
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->parts[i] = std::move(part);
                if (error && !state->error)
                    state->error = error;
                last = --state->remaining == 0;
            }
            if (!last)
                return;
            if (state->error) {
                // A throwing callback would otherwise vanish into a
                // discarded pool future; invokeGuarded surfaces it.
                invokeGuarded("submitAsync completion callback",
                              state->callback,
                              Result(state->numClbits), state->error);
                return;
            }
            try {
                Result merged(state->numClbits);
                for (Result &shard_result : state->parts)
                    merged.merge(shard_result);
                ExecStats stats;
                stats.shards = state->parts.size();
                stats.engineSeconds =
                    std::chrono::duration<double>(
                        obs::Tracer::Clock::now() - state->start)
                        .count();
                merged.setExecStats(stats);
                invokeGuarded("submitAsync completion callback",
                              state->callback, std::move(merged),
                              nullptr);
            } catch (...) {
                // Merge failure: deliver it rather than dropping the
                // completion on the floor.
                invokeGuarded("submitAsync completion callback",
                              state->callback,
                              Result(state->numClbits),
                              std::current_exception());
            }
        });
    }
}

namespace {

/**
 * Shared state of one adaptive run. Wave bookkeeping (parts,
 * remaining) is guarded by the mutex; everything else is only touched
 * by the dispatching thread or by the wave's last-finishing shard —
 * the release/acquire pair on the final `--remaining` orders those
 * accesses, so the merge/evaluate/relaunch sequence runs unlocked.
 */
struct AdaptiveState
{
    Job job;
    BackendPtr backend;
    std::vector<Shard> plan;
    std::size_t perWave = 1;
    std::size_t lanes = 1;
    std::size_t budget = 0;
    std::size_t numClbits = 0;

    std::size_t nextShard = 0;
    std::size_t wave = 0;
    Result merged;
    obs::Tracer::Clock::time_point start;
    /** Async-span id of the in-flight wave (0 = tracing off). */
    std::uint64_t waveSpanId = 0;

    std::mutex mutex;
    std::vector<Result> parts;
    std::size_t remaining = 0;
    std::exception_ptr error;

    ExecutionEngine::Progress progress;
    ExecutionEngine::Completion done;
    /** Captures only the engine; the pool tasks keep `this` alive. */
    std::function<void(std::shared_ptr<AdaptiveState>)> launchWave;
};

/** Wave epilogue, run by the wave's last-finishing shard. */
void
finishAdaptiveWave(const std::shared_ptr<AdaptiveState> &state)
{
    if (state->error) {
        invokeGuarded("submitAdaptive completion callback",
                      state->done, Result(state->numClbits),
                      state->error);
        return;
    }
    // Merge in shard order: together with waves walking the plan in
    // shard-index order this reproduces run()'s merge order exactly.
    {
        obs::Span merge_span("engine", "wave_merge",
                             {{"wave", state->wave + 1},
                              {"parts", state->parts.size()}});
        for (Result &part : state->parts)
            state->merged.merge(part);
    }
    ++state->wave;
    obs::count(engineMetrics().waves);

    StoppingStatus status;
    {
        obs::Span eval_span("engine", "stopping_eval",
                            {{"wave", state->wave}});
        if (state->job.stopping.enabled()) {
            try {
                status =
                    evaluateStopping(state->job.stopping,
                                     state->merged,
                                     state->job.instrumented.get());
            } catch (...) {
                invokeGuarded("submitAdaptive completion callback",
                              state->done, Result(state->numClbits),
                              std::current_exception());
                return;
            }
        } else {
            // No convergence target: waves always run the full
            // budget, but when the job carries enough decode
            // bookkeeping the statistic is still evaluated so
            // streaming consumers see a live estimate rather than
            // the defaults.
            try {
                status =
                    evaluateStopping(state->job.stopping,
                                     state->merged,
                                     state->job.instrumented.get());
            } catch (const Error &) {
                // Nothing to watch (e.g. any-error without
                // assertions): stream shot progress only.
                status.shotsDone = state->merged.shots();
            }
        }
    }
    status.wave = state->wave;
    status.shotsRequested = state->budget;
    status.finished = status.converged ||
                      state->nextShard >= state->plan.size();

    if (state->waveSpanId != 0) {
        obs::asyncEnd("engine", "wave", state->waveSpanId);
        state->waveSpanId = 0;
    }

    if (state->progress)
        invokeGuarded("submitAdaptive progress callback",
                      state->progress, state->merged, status);

    if (!status.finished) {
        state->launchWave(state);
        return;
    }
    Result final_result = std::move(state->merged);
    final_result.setShotsRequested(state->budget);
    final_result.setStoppedEarly(final_result.shots() <
                                 state->budget);
    ExecStats stats;
    stats.shards = state->nextShard;
    stats.waves = state->wave;
    stats.engineSeconds = std::chrono::duration<double>(
                              obs::Tracer::Clock::now() - state->start)
                              .count();
    final_result.setExecStats(stats);
    if (obs::metricsEnabled()) {
        const EngineMetrics &m = engineMetrics();
        obs::count(m.adaptiveBudgetShots, state->budget);
        obs::count(m.adaptiveShotsSaved,
                   state->budget - final_result.shots());
    }
    invokeGuarded("submitAdaptive completion callback", state->done,
                  std::move(final_result), nullptr);
}

} // namespace

void
ExecutionEngine::submitAdaptive(Job job, Progress on_progress,
                                Completion on_complete)
{
    if (!on_complete)
        throw ValueError(
            "submitAdaptive requires a completion callback");
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start_time = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);

    const StoppingRule &rule = job.stopping;
    const std::size_t budget =
        rule.maxShots != 0 ? rule.maxShots : job.shots;
    if (budget == 0)
        throw ValueError("adaptive job has no shot budget");
    // Misconfigured rules (assertion statistic without an
    // instrumented circuit, bad check index, bad outcome string) must
    // throw here, synchronously, not inside a pool callback.
    if (rule.enabled())
        evaluateStopping(rule, Result(job.circuit->numClbits()),
                         job.instrumented.get());

    auto state = std::make_shared<AdaptiveState>();
    // Waves partition the *budget's* shard plan by shard index; the
    // plan (and with it every shard's shots and RNG stream) is the
    // same one run() would use for the full budget, which is what
    // makes waved counts bit-identical to a single block.
    state->plan = shardPlan(budget, job.seed, *backend);
    if (rule.waveShots > 0) {
        // Round the requested wave size up to whole shards.
        const std::size_t avg_shard = std::max<std::size_t>(
            1, budget / state->plan.size());
        state->perWave = std::clamp<std::size_t>(
            (rule.waveShots + avg_shard - 1) / avg_shard, 1,
            state->plan.size());
    } else if (!rule.enabled()) {
        // No convergence target and no explicit wave size: one wave
        // of the whole plan, i.e. run()'s schedule (full shard
        // parallelism) plus a single progress report.
        state->perWave = state->plan.size();
    } else {
        // Auto wave size: about one shard per pool thread keeps the
        // pool busy within a wave without overshooting the stopping
        // point by more than a pool-width of shards.
        state->perWave = std::clamp<std::size_t>(
            pool_.size(), 1, state->plan.size());
    }
    state->lanes = checkAndLaneCount(job, backend, state->perWave);
    state->budget = budget;
    state->numClbits = job.circuit->numClbits();
    state->merged = Result(state->numClbits);
    state->backend = backend;
    state->job = std::move(job);
    state->progress = std::move(on_progress);
    state->done = std::move(on_complete);
    state->start = start_time;
    state->launchWave = [this](std::shared_ptr<AdaptiveState> st) {
        const std::size_t begin = st->nextShard;
        const std::size_t count =
            std::min(st->perWave, st->plan.size() - begin);
        st->nextShard = begin + count;
        if (obs::tracingEnabled()) {
            // Wave shards cross threads, so the wave itself is an
            // async begin/end pair closed by the wave epilogue.
            st->waveSpanId = obs::Tracer::global().nextAsyncId();
            obs::asyncBegin("engine", "wave", st->waveSpanId,
                            {{"wave", st->wave + 1},
                             {"shards", count}});
        }
        st->parts.assign(count, Result(st->numClbits));
        st->remaining = count;
        for (std::size_t i = 0; i < count; ++i) {
            pool_.submit([st, i,
                          runner = shardRunner(st->job, st->backend,
                                               st->plan[begin + i],
                                               st->lanes)]() {
                Result part(st->numClbits);
                std::exception_ptr error;
                try {
                    part = runner();
                } catch (...) {
                    error = std::current_exception();
                }
                bool last = false;
                {
                    std::lock_guard<std::mutex> lock(st->mutex);
                    st->parts[i] = std::move(part);
                    if (error && !st->error)
                        st->error = error;
                    last = --st->remaining == 0;
                }
                if (!last)
                    return;
                // An epilogue throw (merge failure, next-wave
                // dispatch onto a stopping pool) would vanish into
                // this task's discarded future and leave the job
                // uncompleted; deliver it instead.
                try {
                    finishAdaptiveWave(st);
                } catch (...) {
                    invokeGuarded(
                        "submitAdaptive completion callback",
                        st->done, Result(st->numClbits),
                        std::current_exception());
                }
            });
        }
    };
    state->launchWave(state);
}

Result
ExecutionEngine::runAdaptive(const Job &job, Progress on_progress)
{
    // Heap-held promise: the pool-side callback may still be inside
    // set_value's epilogue when get() unblocks this thread.
    auto promise = std::make_shared<std::promise<Result>>();
    std::future<Result> future = promise->get_future();
    submitAdaptive(
        job, std::move(on_progress),
        [promise](Result result, std::exception_ptr error) {
            if (error)
                promise->set_exception(error);
            else
                promise->set_value(std::move(result));
        });
    // Safe to park here: the caller is not a pool thread (the same
    // contract as future-based submit()), so waves drain freely.
    return future.get();
}

AssertionReport
ExecutionEngine::runInstrumented(const InstrumentedCircuit &inst,
                                 std::size_t shots,
                                 const std::string &backend,
                                 std::uint64_t seed,
                                 const NoiseModel *noise,
                                 Result *result_out)
{
    const Result result =
        run(inst.circuit(), shots, backend, seed, noise);
    if (result_out != nullptr)
        *result_out = result;
    return analyze(inst, result);
}

} // namespace runtime
} // namespace qra
