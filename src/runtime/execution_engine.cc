#include "runtime/execution_engine.hh"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/kernels/parallel.hh"
#include "sim/kernels/simd/dispatch.hh"

namespace qra {
namespace runtime {

namespace {

/** Registered-once handles for the engine's metrics. */
struct EngineMetrics
{
    obs::CounterHandle jobs;
    obs::CounterHandle shards;
    obs::CounterHandle shots;
    obs::CounterHandle waves;
    obs::CounterHandle adaptiveBudgetShots;
    obs::CounterHandle adaptiveShotsSaved;
    obs::CounterHandle cancelled;
    obs::CounterHandle retries;
    obs::CounterHandle resumedShots;
    obs::HistogramHandle shardRunNs;
    obs::HistogramHandle shardQueueWaitNs;
};

const EngineMetrics &
engineMetrics()
{
    static const EngineMetrics metrics = []() {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        EngineMetrics m;
        m.jobs = reg.counter("engine.jobs");
        m.shards = reg.counter("engine.shards");
        m.shots = reg.counter("engine.shots");
        m.waves = reg.counter("engine.waves");
        m.adaptiveBudgetShots =
            reg.counter("engine.adaptive.budget_shots");
        m.adaptiveShotsSaved =
            reg.counter("engine.adaptive.shots_saved");
        m.cancelled = reg.counter("engine.cancelled");
        m.retries = reg.counter("engine.retries");
        m.resumedShots = reg.counter("engine.resumed_shots");
        m.shardRunNs = reg.histogram("engine.shard.run_ns");
        m.shardQueueWaitNs =
            reg.histogram("engine.shard.queue_wait_ns");
        return m;
    }();
    return metrics;
}

std::uint64_t
elapsedNs(obs::Tracer::Clock::time_point begin,
          obs::Tracer::Clock::time_point end)
{
    return end <= begin
               ? 0
               : static_cast<std::uint64_t>(
                     std::chrono::duration_cast<
                         std::chrono::nanoseconds>(end - begin)
                         .count());
}

/** Invoke a user callback, logging instead of propagating throws. */
template <typename Callback, typename... Args>
void
invokeGuarded(const char *what, Callback &&callback, Args &&...args)
{
    try {
        callback(std::forward<Args>(args)...);
    } catch (const std::exception &e) {
        logWarn(std::string(what) + " threw: " + e.what());
    } catch (...) {
        logWarn(std::string(what) +
                " threw a non-standard exception");
    }
}

/** Arm Job::deadlineMs on the job's cancel token at dispatch. */
void
armJobDeadline(const Job &job)
{
    if (job.deadlineMs <= 0.0)
        return;
    job.cancel.armDeadline(
        CancelToken::Clock::now() +
        std::chrono::duration_cast<CancelToken::Clock::duration>(
            std::chrono::duration<double, std::milli>(
                job.deadlineMs)));
}

/** The fault plan governing a job: its own, else the QRA_FAULTS one. */
const FaultPlan *
effectiveFaultPlan(const Job &job)
{
    return job.faults ? job.faults.get() : processFaultPlan();
}

/**
 * Stamp a fixed-budget merge that came up short because the job was
 * cancelled: cancelled() + reason, plus the original ask so
 * shotsRequested() reports the shortfall.
 */
void
stampCancelledFixed(Result &merged, const Job &job)
{
    if (!job.cancel.poll() || merged.shots() >= job.shots)
        return;
    merged.setShotsRequested(job.shots);
    merged.setCancelled(cancelReasonName(job.cancel.reason()));
    obs::count(engineMetrics().cancelled);
}

} // namespace

ExecutionEngine::ExecutionEngine(EngineOptions options,
                                 BackendRegistry *registry)
    : options_(options),
      registry_(registry != nullptr ? registry
                                    : &BackendRegistry::global()),
      pool_(options.threads)
{
    if (options_.shardShots == 0)
        throw ValueError("EngineOptions.shardShots must be positive");
    if (options_.maxShards == 0)
        throw ValueError("EngineOptions.maxShards must be positive");
    if (options_.fusionLevel < kernels::kFusionNone ||
        options_.fusionLevel > kernels::kFusion2q)
        throw ValueError("EngineOptions.fusionLevel must be 0, 1 or 2");
    if (options_.simdTier >
        static_cast<int>(kernels::simd::Tier::Avx512))
        throw ValueError(
            "EngineOptions.simdTier must be -1 (auto), 0 (scalar), "
            "1 (portable), 2 (avx2) or 3 (avx512)");
}

ExecutionEngine::ExecutionEngine(std::size_t threads)
    : ExecutionEngine(EngineOptions{.threads = threads})
{
}

std::vector<Shard>
ExecutionEngine::shardPlan(std::size_t shots, std::uint64_t seed,
                           const Backend &backend) const
{
    std::size_t count = 1;
    if (backend.capabilities().shardable && shots > 0) {
        count = (shots + options_.shardShots - 1) / options_.shardShots;
        count = std::clamp<std::size_t>(count, 1, options_.maxShards);
    }
    std::vector<Shard> plan(count);
    const std::size_t base = shots / count;
    const std::size_t remainder = shots % count;
    for (std::size_t i = 0; i < count; ++i) {
        plan[i].shots = base + (i < remainder ? 1 : 0);
        plan[i].seed = splitSeed(seed, i);
    }
    return plan;
}

std::size_t
ExecutionEngine::checkAndLaneCount(const Job &job,
                                   const BackendPtr &backend,
                                   std::size_t shard_count) const
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const std::string reason =
        backend->rejectReason(*job.circuit, job.noise);
    if (!reason.empty())
        throw SimulationError(reason);

    // Intra-shot lanes: leftover pool capacity divided across the
    // job's shards (or the explicit intraThreads knob), clamped to
    // the pool size. Lanes and shards share pool_, and a lane-waiting
    // shard helps drain the queue, so total concurrency never
    // exceeds the pool's worker count.
    std::size_t lanes = options_.intraThreads;
    if (lanes == 0)
        lanes = std::max<std::size_t>(
            1,
            pool_.size() / std::max<std::size_t>(1, shard_count));
    return std::min(lanes, pool_.size());
}

std::function<Result()>
ExecutionEngine::shardRunner(
    const Job &job, const BackendPtr &backend, const Shard &shard,
    std::size_t lanes, std::size_t shard_index, bool skip_on_cancel,
    std::shared_ptr<std::atomic<std::size_t>> retries)
{
    // The enqueue timestamp is only captured when telemetry is on:
    // the disabled path stays free of clock reads.
    const obs::Tracer::Clock::time_point enqueued =
        obs::anyEnabled() ? obs::Tracer::Clock::now()
                          : obs::Tracer::Clock::time_point{};
    return [backend, circuit = job.circuit, noise = job.noise, shard,
            lanes, pool = &pool_, fusion = options_.fusionLevel,
            simd_tier = options_.simdTier,
            cache_block = options_.cacheBlockBytes,
            artifacts = job.artifacts,
            enqueued, shard_index, skip_on_cancel,
            cancel = job.cancel, retry = job.retry,
            faults_owner = job.faults,
            faults = effectiveFaultPlan(job),
            retries = std::move(retries)]() {
        // Cancellation is shard-granular: a fixed-budget shard the
        // pool dequeues after cancel() contributes zero shots and the
        // merge stays bit-identical to the completed prefix. Adaptive
        // wave shards never skip (skip_on_cancel=false) so a wave
        // either fully merges or fully fails — the invariant the
        // checkpoint cursor depends on.
        if (skip_on_cancel && cancel.poll())
            return Result(circuit->numClbits());
        kernels::ParallelScope scope(pool, lanes);
        kernels::FusionScope fusion_scope(fusion);
        kernels::simd::TierScope tier_scope(simd_tier);
        kernels::CacheBlockScope block_scope(cache_block);
        kernels::PlanCacheScope cache_scope(artifacts.get());
        // Transient failures (TransientSimulationError, bad_alloc —
        // injected or real) re-run the shard with its ORIGINAL seed:
        // a recovered run's counts are bit-identical to a fault-free
        // one. Permanent errors and exhausted budgets propagate.
        auto run_once = [&](std::size_t attempt) {
            maybeInjectFault(faults, FaultSite::Scope::Shard,
                             shard_index, attempt);
            return backend->run(*circuit, shard.shots, shard.seed,
                                noise);
        };
        auto run_with_retry = [&]() {
            for (std::size_t attempt = 0;; ++attempt) {
                try {
                    return run_once(attempt);
                } catch (...) {
                    const std::exception_ptr error =
                        std::current_exception();
                    if (!isTransient(error) ||
                        attempt + 1 >= retry.maxAttempts ||
                        cancel.cancelled())
                        std::rethrow_exception(error);
                    if (retries)
                        retries->fetch_add(
                            1, std::memory_order_relaxed);
                    obs::count(engineMetrics().retries);
                    const double delay_ms = retryBackoffMs(
                        retry, attempt + 1, shard.seed);
                    if (delay_ms > 0.0)
                        std::this_thread::sleep_for(
                            std::chrono::duration<double,
                                                  std::milli>(
                                delay_ms));
                }
            }
        };
        if (!obs::anyEnabled())
            return run_with_retry();
        const auto start = obs::Tracer::Clock::now();
        const std::uint64_t wait_ns = elapsedNs(enqueued, start);
        Result part = run_with_retry();
        const auto end = obs::Tracer::Clock::now();
        obs::complete("engine", "shard", start, end,
                      {{"shots", shard.shots}, {"wait_ns", wait_ns}});
        const EngineMetrics &m = engineMetrics();
        obs::count(m.shards);
        obs::count(m.shots, shard.shots);
        obs::observe(m.shardRunNs, elapsedNs(start, end));
        obs::observe(m.shardQueueWaitNs, wait_ns);
        return part;
    };
}

std::vector<std::future<Result>>
ExecutionEngine::dispatch(
    const Job &job, const BackendPtr &backend,
    const std::shared_ptr<std::atomic<std::size_t>> &retries)
{
    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);
    const std::size_t lanes =
        checkAndLaneCount(job, backend, plan.size());

    std::vector<std::future<Result>> futures;
    for (std::size_t i = 0; i < plan.size(); ++i)
        futures.push_back(pool_.submit(
            shardRunner(job, backend, plan[i], lanes, i,
                        /*skip_on_cancel=*/true, retries)));
    return futures;
}

Result
ExecutionEngine::run(const Job &job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    armJobDeadline(job);
    auto retries = std::make_shared<std::atomic<std::size_t>>(0);
    std::vector<std::future<Result>> futures =
        dispatch(job, backend, retries);
    Result merged(job.circuit->numClbits());
    for (std::future<Result> &future : futures)
        merged.merge(future.get());
    stampCancelledFixed(merged, job);
    ExecStats stats;
    stats.shards = futures.size();
    stats.retries = retries->load(std::memory_order_relaxed);
    stats.engineSeconds = std::chrono::duration<double>(
                              obs::Tracer::Clock::now() - start)
                              .count();
    merged.setExecStats(stats);
    return merged;
}

Result
ExecutionEngine::run(const Circuit &circuit, std::size_t shots,
                     const std::string &backend, std::uint64_t seed,
                     const NoiseModel *noise)
{
    return run(Job(circuit, shots, backend, seed, noise));
}

std::future<Result>
ExecutionEngine::submit(Job job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    armJobDeadline(job);
    auto retries = std::make_shared<std::atomic<std::size_t>>(0);
    // Shards go to the pool now; the merge is deferred to get() so a
    // waiting caller never occupies a pool thread.
    auto futures = std::make_shared<std::vector<std::future<Result>>>(
        dispatch(job, backend, retries));
    const std::size_t num_clbits = job.circuit->numClbits();
    return std::async(
        std::launch::deferred,
        [futures, num_clbits, start, retries,
         job = std::move(job)]() {
            Result merged(num_clbits);
            for (std::future<Result> &future : *futures)
                merged.merge(future.get());
            stampCancelledFixed(merged, job);
            ExecStats stats;
            stats.shards = futures->size();
            stats.retries = retries->load(std::memory_order_relaxed);
            stats.engineSeconds =
                std::chrono::duration<double>(
                    obs::Tracer::Clock::now() - start)
                    .count();
            merged.setExecStats(stats);
            return merged;
        });
}

void
ExecutionEngine::submitAsync(Job job, Completion on_complete)
{
    if (!on_complete)
        throw ValueError("submitAsync requires a completion callback");
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start_time = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    armJobDeadline(job);
    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);
    const std::size_t lanes =
        checkAndLaneCount(job, backend, plan.size());

    // Shared completion state: the last shard to finish merges the
    // parts in shard order (bit-identical to run()) and invokes the
    // callback on its pool thread — no thread ever blocks in a join.
    struct AsyncState
    {
        std::mutex mutex;
        std::vector<Result> parts;
        std::size_t remaining;
        std::size_t numClbits;
        std::size_t requestedShots = 0;
        CancelToken cancel;
        std::atomic<std::size_t> retryCount{0};
        Completion callback;
        std::exception_ptr error;
        obs::Tracer::Clock::time_point start;
    };
    auto state = std::make_shared<AsyncState>();
    state->parts.assign(plan.size(), Result(job.circuit->numClbits()));
    state->remaining = plan.size();
    state->numClbits = job.circuit->numClbits();
    state->requestedShots = job.shots;
    state->cancel = job.cancel;
    state->callback = std::move(on_complete);
    state->start = start_time;
    // Aliased handle: shard retries land in the state's counter and
    // keep it alive alongside the shard closures.
    auto retries = std::shared_ptr<std::atomic<std::size_t>>(
        state, &state->retryCount);

    for (std::size_t i = 0; i < plan.size(); ++i) {
        pool_.submit([runner = shardRunner(job, backend, plan[i],
                                           lanes, i,
                                           /*skip_on_cancel=*/true,
                                           retries),
                      state, i]() {
            Result part(state->numClbits);
            std::exception_ptr error;
            try {
                part = runner();
            } catch (...) {
                error = std::current_exception();
            }
            bool last = false;
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->parts[i] = std::move(part);
                if (error && !state->error)
                    state->error = error;
                last = --state->remaining == 0;
            }
            if (!last)
                return;
            if (state->error) {
                // A throwing callback would otherwise vanish into a
                // discarded pool future; invokeGuarded surfaces it.
                invokeGuarded("submitAsync completion callback",
                              state->callback,
                              Result(state->numClbits), state->error);
                return;
            }
            try {
                Result merged(state->numClbits);
                for (Result &shard_result : state->parts)
                    merged.merge(shard_result);
                if (state->cancel.poll() &&
                    merged.shots() < state->requestedShots) {
                    merged.setShotsRequested(state->requestedShots);
                    merged.setCancelled(cancelReasonName(
                        state->cancel.reason()));
                    obs::count(engineMetrics().cancelled);
                }
                ExecStats stats;
                stats.shards = state->parts.size();
                stats.retries = state->retryCount.load(
                    std::memory_order_relaxed);
                stats.engineSeconds =
                    std::chrono::duration<double>(
                        obs::Tracer::Clock::now() - state->start)
                        .count();
                merged.setExecStats(stats);
                invokeGuarded("submitAsync completion callback",
                              state->callback, std::move(merged),
                              nullptr);
            } catch (...) {
                // Merge failure: deliver it rather than dropping the
                // completion on the floor.
                invokeGuarded("submitAsync completion callback",
                              state->callback,
                              Result(state->numClbits),
                              std::current_exception());
            }
        });
    }
}

namespace {

/**
 * Shared state of one adaptive run. Wave bookkeeping (parts,
 * remaining) is guarded by the mutex; everything else is only touched
 * by the dispatching thread or by the wave's last-finishing shard —
 * the release/acquire pair on the final `--remaining` orders those
 * accesses, so the merge/evaluate/relaunch sequence runs unlocked.
 */
struct AdaptiveState
{
    Job job;
    BackendPtr backend;
    std::vector<Shard> plan;
    std::size_t perWave = 1;
    std::size_t lanes = 1;
    std::size_t budget = 0;
    std::size_t numClbits = 0;
    /** Resolved fault plan (job's own or QRA_FAULTS; may be null). */
    const FaultPlan *faults = nullptr;

    std::size_t nextShard = 0;
    /** First shard of the in-flight wave — the checkpoint cursor is
        rewound here when the wave fails, so its shots are not lost. */
    std::size_t waveBegin = 0;
    std::size_t wave = 0;
    /** Shots adopted from Job::resumeFrom (0 = fresh run). */
    std::size_t resumedShots = 0;
    Result merged;
    StoppingStatus lastStatus;
    std::atomic<std::size_t> retryCount{0};
    obs::Tracer::Clock::time_point start;
    /** Async-span id of the in-flight wave (0 = tracing off). */
    std::uint64_t waveSpanId = 0;

    std::mutex mutex;
    std::vector<Result> parts;
    std::size_t remaining = 0;
    std::exception_ptr error;

    ExecutionEngine::Progress progress;
    ExecutionEngine::Completion done;
    /** Captures only the engine; the pool tasks keep `this` alive. */
    std::function<void(std::shared_ptr<AdaptiveState>)> launchWave;
};

/**
 * Fill the job's checkpoint sink (if any) with the current cursor.
 * Called with the wave machinery quiescent: at completion,
 * cancellation, and wave failure (cursor rewound to the failing
 * wave's first shard — its shards re-run on resume). The stored
 * merged Result is the raw shard merge, before any completion
 * stamping, so resuming merges cleanly on top of it.
 */
void
writeCheckpoint(const std::shared_ptr<AdaptiveState> &state,
                std::size_t next_shard)
{
    if (!state->job.checkpoint)
        return;
    JobCheckpoint &ck = *state->job.checkpoint;
    ck.circuitHash = state->job.circuit->hash();
    ck.seed = state->job.seed;
    ck.budget = state->budget;
    ck.planShards = state->plan.size();
    ck.nextShard = next_shard;
    ck.wave = state->wave;
    ck.merged = state->merged;
    ck.lastStatus = state->lastStatus;
}

/** Wave epilogue, run by the wave's last-finishing shard. */
void
finishAdaptiveWave(const std::shared_ptr<AdaptiveState> &state)
{
    // Wave-scope fault sites fail the epilogue itself (there is no
    // per-wave retry — recovery is the checkpoint/resume path).
    if (!state->error) {
        try {
            maybeInjectFault(state->faults, FaultSite::Scope::Wave,
                             state->wave, 0);
        } catch (...) {
            state->error = std::current_exception();
        }
    }
    if (state->error) {
        // The failing wave's parts are discarded; rewind the
        // checkpoint cursor to its first shard so a resume re-runs
        // exactly the lost shots.
        writeCheckpoint(state, state->waveBegin);
        invokeGuarded("submitAdaptive completion callback",
                      state->done, Result(state->numClbits),
                      state->error);
        return;
    }
    // Merge in shard order: together with waves walking the plan in
    // shard-index order this reproduces run()'s merge order exactly.
    {
        obs::Span merge_span("engine", "wave_merge",
                             {{"wave", state->wave + 1},
                              {"parts", state->parts.size()}});
        for (Result &part : state->parts)
            state->merged.merge(part);
    }
    ++state->wave;
    obs::count(engineMetrics().waves);

    StoppingStatus status;
    {
        obs::Span eval_span("engine", "stopping_eval",
                            {{"wave", state->wave}});
        if (state->job.stopping.enabled()) {
            try {
                status =
                    evaluateStopping(state->job.stopping,
                                     state->merged,
                                     state->job.instrumented.get());
            } catch (...) {
                invokeGuarded("submitAdaptive completion callback",
                              state->done, Result(state->numClbits),
                              std::current_exception());
                return;
            }
        } else {
            // No convergence target: waves always run the full
            // budget, but when the job carries enough decode
            // bookkeeping the statistic is still evaluated so
            // streaming consumers see a live estimate rather than
            // the defaults.
            try {
                status =
                    evaluateStopping(state->job.stopping,
                                     state->merged,
                                     state->job.instrumented.get());
            } catch (const Error &) {
                // Nothing to watch (e.g. any-error without
                // assertions): stream shot progress only.
                status.shotsDone = state->merged.shots();
            }
        }
    }
    status.wave = state->wave;
    status.shotsRequested = state->budget;
    // Cancellation is polled only here, at the wave boundary: the
    // wave that was in flight when cancel() fired still merges in
    // full, so the checkpoint cursor always sits between waves.
    status.cancelled = state->job.cancel.poll();
    status.finished = status.converged || status.cancelled ||
                      state->nextShard >= state->plan.size();
    state->lastStatus = status;

    if (state->waveSpanId != 0) {
        obs::asyncEnd("engine", "wave", state->waveSpanId);
        state->waveSpanId = 0;
    }

    if (state->progress)
        invokeGuarded("submitAdaptive progress callback",
                      state->progress, state->merged, status);

    if (!status.finished) {
        state->launchWave(state);
        return;
    }
    // Checkpoint before completion stamping: the stored merge is the
    // raw shard prefix a resume continues from.
    writeCheckpoint(state, state->nextShard);
    Result final_result = std::move(state->merged);
    final_result.setShotsRequested(state->budget);
    final_result.setStoppedEarly(status.converged &&
                                 final_result.shots() <
                                     state->budget);
    if (status.cancelled) {
        final_result.setCancelled(
            cancelReasonName(state->job.cancel.reason()));
        obs::count(engineMetrics().cancelled);
    }
    ExecStats stats;
    stats.shards = state->nextShard;
    stats.waves = state->wave;
    stats.retries = state->retryCount.load(std::memory_order_relaxed);
    stats.resumedShots = state->resumedShots;
    stats.engineSeconds = std::chrono::duration<double>(
                              obs::Tracer::Clock::now() - state->start)
                              .count();
    final_result.setExecStats(stats);
    if (obs::metricsEnabled() && !status.cancelled) {
        const EngineMetrics &m = engineMetrics();
        obs::count(m.adaptiveBudgetShots, state->budget);
        obs::count(m.adaptiveShotsSaved,
                   state->budget - final_result.shots());
    }
    invokeGuarded("submitAdaptive completion callback", state->done,
                  std::move(final_result), nullptr);
}

} // namespace

void
ExecutionEngine::submitAdaptive(Job job, Progress on_progress,
                                Completion on_complete)
{
    if (!on_complete)
        throw ValueError(
            "submitAdaptive requires a completion callback");
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const auto start_time = obs::Tracer::Clock::now();
    obs::count(engineMetrics().jobs);
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    armJobDeadline(job);

    const StoppingRule &rule = job.stopping;
    const std::size_t budget =
        rule.maxShots != 0 ? rule.maxShots : job.shots;
    if (budget == 0)
        throw ValueError("adaptive job has no shot budget");
    // Misconfigured rules (assertion statistic without an
    // instrumented circuit, bad check index, bad outcome string) must
    // throw here, synchronously, not inside a pool callback.
    if (rule.enabled())
        evaluateStopping(rule, Result(job.circuit->numClbits()),
                         job.instrumented.get());

    auto state = std::make_shared<AdaptiveState>();
    // Waves partition the *budget's* shard plan by shard index; the
    // plan (and with it every shard's shots and RNG stream) is the
    // same one run() would use for the full budget, which is what
    // makes waved counts bit-identical to a single block.
    state->plan = shardPlan(budget, job.seed, *backend);
    if (rule.waveShots > 0) {
        // Round the requested wave size up to whole shards.
        const std::size_t avg_shard = std::max<std::size_t>(
            1, budget / state->plan.size());
        state->perWave = std::clamp<std::size_t>(
            (rule.waveShots + avg_shard - 1) / avg_shard, 1,
            state->plan.size());
    } else if (!rule.enabled()) {
        // No convergence target and no explicit wave size: one wave
        // of the whole plan, i.e. run()'s schedule (full shard
        // parallelism) plus a single progress report.
        state->perWave = state->plan.size();
    } else {
        // Auto wave size: about one shard per pool thread keeps the
        // pool busy within a wave without overshooting the stopping
        // point by more than a pool-width of shards.
        state->perWave = std::clamp<std::size_t>(
            pool_.size(), 1, state->plan.size());
    }
    state->lanes = checkAndLaneCount(job, backend, state->perWave);
    state->budget = budget;
    state->numClbits = job.circuit->numClbits();
    state->merged = Result(state->numClbits);
    state->faults = effectiveFaultPlan(job);

    // Resume: adopt a prior run's cursor after validating that it
    // describes THIS job's shard plan — same circuit, seed, budget,
    // and shard decomposition — so the continued merge is
    // bit-identical to an uninterrupted run. The stopping rule is
    // deliberately not matched: resuming with a tighter target is the
    // refine-an-estimate use case.
    if (job.resumeFrom) {
        const JobCheckpoint &ck = *job.resumeFrom;
        if (!ck.valid())
            throw ValueError("resume checkpoint was never written "
                             "(invalid)");
        if (ck.circuitHash != job.circuit->hash())
            throw ValueError(
                "resume checkpoint is for a different circuit");
        if (ck.seed != job.seed)
            throw ValueError(
                "resume checkpoint is for a different seed");
        if (ck.budget != budget)
            throw ValueError(
                "resume checkpoint is for a different shot budget");
        if (ck.planShards != state->plan.size())
            throw ValueError(
                "resume checkpoint shard plan does not match this "
                "engine's (different shardShots/maxShards?)");
        if (ck.merged.shots() > 0 &&
            ck.merged.numClbits() != state->numClbits)
            throw ValueError(
                "resume checkpoint counts have the wrong register "
                "width");
        state->nextShard = std::min(ck.nextShard, ck.planShards);
        state->wave = ck.wave;
        if (ck.merged.shots() > 0)
            state->merged = ck.merged;
        state->resumedShots = ck.merged.shots();
        obs::count(engineMetrics().resumedShots,
                   state->resumedShots);
    }

    state->backend = backend;
    state->job = std::move(job);
    state->progress = std::move(on_progress);
    state->done = std::move(on_complete);
    state->start = start_time;
    state->launchWave = [this](std::shared_ptr<AdaptiveState> st) {
        const std::size_t begin = st->nextShard;
        st->waveBegin = begin;
        const std::size_t count =
            std::min(st->perWave, st->plan.size() - begin);
        st->nextShard = begin + count;
        if (obs::tracingEnabled()) {
            // Wave shards cross threads, so the wave itself is an
            // async begin/end pair closed by the wave epilogue.
            st->waveSpanId = obs::Tracer::global().nextAsyncId();
            obs::asyncBegin("engine", "wave", st->waveSpanId,
                            {{"wave", st->wave + 1},
                             {"shards", count}});
        }
        st->parts.assign(count, Result(st->numClbits));
        st->remaining = count;
        for (std::size_t i = 0; i < count; ++i) {
            pool_.submit([st, i,
                          runner = shardRunner(
                              st->job, st->backend,
                              st->plan[begin + i], st->lanes,
                              begin + i, /*skip_on_cancel=*/false,
                              std::shared_ptr<
                                  std::atomic<std::size_t>>(
                                  st, &st->retryCount))]() {
                Result part(st->numClbits);
                std::exception_ptr error;
                try {
                    part = runner();
                } catch (...) {
                    error = std::current_exception();
                }
                bool last = false;
                {
                    std::lock_guard<std::mutex> lock(st->mutex);
                    st->parts[i] = std::move(part);
                    if (error && !st->error)
                        st->error = error;
                    last = --st->remaining == 0;
                }
                if (!last)
                    return;
                // An epilogue throw (merge failure, next-wave
                // dispatch onto a stopping pool) would vanish into
                // this task's discarded future and leave the job
                // uncompleted; deliver it instead.
                try {
                    finishAdaptiveWave(st);
                } catch (...) {
                    invokeGuarded(
                        "submitAdaptive completion callback",
                        st->done, Result(st->numClbits),
                        std::current_exception());
                }
            });
        }
    };
    if (state->nextShard >= state->plan.size()) {
        // Resuming an exhausted checkpoint: nothing left to run. Go
        // straight to the epilogue on a pool thread (a zero-shard
        // wave would never have a last-finishing shard to drive it)
        // — it re-evaluates the rule on the merged counts and
        // completes.
        pool_.submit([state]() {
            try {
                finishAdaptiveWave(state);
            } catch (...) {
                invokeGuarded("submitAdaptive completion callback",
                              state->done, Result(state->numClbits),
                              std::current_exception());
            }
        });
        return;
    }
    state->launchWave(state);
}

Result
ExecutionEngine::runAdaptive(const Job &job, Progress on_progress)
{
    // Heap-held promise: the pool-side callback may still be inside
    // set_value's epilogue when get() unblocks this thread.
    auto promise = std::make_shared<std::promise<Result>>();
    std::future<Result> future = promise->get_future();
    submitAdaptive(
        job, std::move(on_progress),
        [promise](Result result, std::exception_ptr error) {
            if (error)
                promise->set_exception(error);
            else
                promise->set_value(std::move(result));
        });
    // Safe to park here: the caller is not a pool thread (the same
    // contract as future-based submit()), so waves drain freely.
    return future.get();
}

AssertionReport
ExecutionEngine::runInstrumented(const InstrumentedCircuit &inst,
                                 std::size_t shots,
                                 const std::string &backend,
                                 std::uint64_t seed,
                                 const NoiseModel *noise,
                                 Result *result_out)
{
    const Result result =
        run(inst.circuit(), shots, backend, seed, noise);
    if (result_out != nullptr)
        *result_out = result;
    return analyze(inst, result);
}

} // namespace runtime
} // namespace qra
