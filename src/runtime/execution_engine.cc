#include "runtime/execution_engine.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/kernels/parallel.hh"

namespace qra {
namespace runtime {

ExecutionEngine::ExecutionEngine(EngineOptions options,
                                 BackendRegistry *registry)
    : options_(options),
      registry_(registry != nullptr ? registry
                                    : &BackendRegistry::global()),
      pool_(options.threads)
{
    if (options_.shardShots == 0)
        throw ValueError("EngineOptions.shardShots must be positive");
    if (options_.maxShards == 0)
        throw ValueError("EngineOptions.maxShards must be positive");
    if (options_.fusionLevel < kernels::kFusionNone ||
        options_.fusionLevel > kernels::kFusion2q)
        throw ValueError("EngineOptions.fusionLevel must be 0, 1 or 2");
}

ExecutionEngine::ExecutionEngine(std::size_t threads)
    : ExecutionEngine(EngineOptions{.threads = threads})
{
}

std::vector<Shard>
ExecutionEngine::shardPlan(std::size_t shots, std::uint64_t seed,
                           const Backend &backend) const
{
    std::size_t count = 1;
    if (backend.capabilities().shardable && shots > 0) {
        count = (shots + options_.shardShots - 1) / options_.shardShots;
        count = std::clamp<std::size_t>(count, 1, options_.maxShards);
    }
    std::vector<Shard> plan(count);
    const std::size_t base = shots / count;
    const std::size_t remainder = shots % count;
    for (std::size_t i = 0; i < count; ++i) {
        plan[i].shots = base + (i < remainder ? 1 : 0);
        plan[i].seed = splitSeed(seed, i);
    }
    return plan;
}

std::size_t
ExecutionEngine::checkAndLaneCount(const Job &job,
                                   const BackendPtr &backend,
                                   std::size_t shard_count) const
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const std::string reason =
        backend->rejectReason(*job.circuit, job.noise);
    if (!reason.empty())
        throw SimulationError(reason);

    // Intra-shot lanes: leftover pool capacity divided across the
    // job's shards (or the explicit intraThreads knob), clamped to
    // the pool size. Lanes and shards share pool_, and a lane-waiting
    // shard helps drain the queue, so total concurrency never
    // exceeds the pool's worker count.
    std::size_t lanes = options_.intraThreads;
    if (lanes == 0)
        lanes = std::max<std::size_t>(
            1,
            pool_.size() / std::max<std::size_t>(1, shard_count));
    return std::min(lanes, pool_.size());
}

std::function<Result()>
ExecutionEngine::shardRunner(const Job &job, const BackendPtr &backend,
                             const Shard &shard, std::size_t lanes)
{
    return [backend, circuit = job.circuit, noise = job.noise, shard,
            lanes, pool = &pool_, fusion = options_.fusionLevel,
            artifacts = job.artifacts]() {
        kernels::ParallelScope scope(pool, lanes);
        kernels::FusionScope fusion_scope(fusion);
        kernels::PlanCacheScope cache_scope(artifacts.get());
        return backend->run(*circuit, shard.shots, shard.seed, noise);
    };
}

std::vector<std::future<Result>>
ExecutionEngine::dispatch(const Job &job, const BackendPtr &backend)
{
    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);
    const std::size_t lanes =
        checkAndLaneCount(job, backend, plan.size());

    std::vector<std::future<Result>> futures;
    for (const Shard &shard : plan)
        futures.push_back(
            pool_.submit(shardRunner(job, backend, shard, lanes)));
    return futures;
}

Result
ExecutionEngine::run(const Job &job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    std::vector<std::future<Result>> futures = dispatch(job, backend);
    Result merged(job.circuit->numClbits());
    for (std::future<Result> &future : futures)
        merged.merge(future.get());
    return merged;
}

Result
ExecutionEngine::run(const Circuit &circuit, std::size_t shots,
                     const std::string &backend, std::uint64_t seed,
                     const NoiseModel *noise)
{
    return run(Job(circuit, shots, backend, seed, noise));
}

std::future<Result>
ExecutionEngine::submit(Job job)
{
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    // Shards go to the pool now; the merge is deferred to get() so a
    // waiting caller never occupies a pool thread.
    auto futures = std::make_shared<std::vector<std::future<Result>>>(
        dispatch(job, backend));
    const std::size_t num_clbits = job.circuit->numClbits();
    return std::async(std::launch::deferred, [futures, num_clbits]() {
        Result merged(num_clbits);
        for (std::future<Result> &future : *futures)
            merged.merge(future.get());
        return merged;
    });
}

void
ExecutionEngine::submitAsync(Job job, Completion on_complete)
{
    if (!on_complete)
        throw ValueError("submitAsync requires a completion callback");
    if (!job.circuit)
        throw ValueError("job has no circuit");
    const BackendPtr backend =
        registry_->resolve(job.backend, *job.circuit, job.noise);
    const std::vector<Shard> plan =
        shardPlan(job.shots, job.seed, *backend);
    const std::size_t lanes =
        checkAndLaneCount(job, backend, plan.size());

    // Shared completion state: the last shard to finish merges the
    // parts in shard order (bit-identical to run()) and invokes the
    // callback on its pool thread — no thread ever blocks in a join.
    struct AsyncState
    {
        std::mutex mutex;
        std::vector<Result> parts;
        std::size_t remaining;
        std::size_t numClbits;
        Completion callback;
        std::exception_ptr error;
    };
    auto state = std::make_shared<AsyncState>();
    state->parts.assign(plan.size(), Result(job.circuit->numClbits()));
    state->remaining = plan.size();
    state->numClbits = job.circuit->numClbits();
    state->callback = std::move(on_complete);

    for (std::size_t i = 0; i < plan.size(); ++i) {
        pool_.submit([runner = shardRunner(job, backend, plan[i],
                                           lanes),
                      state, i]() {
            Result part(state->numClbits);
            std::exception_ptr error;
            try {
                part = runner();
            } catch (...) {
                error = std::current_exception();
            }
            bool last = false;
            {
                std::lock_guard<std::mutex> lock(state->mutex);
                state->parts[i] = std::move(part);
                if (error && !state->error)
                    state->error = error;
                last = --state->remaining == 0;
            }
            if (!last)
                return;
            // A throwing callback would otherwise vanish into a
            // discarded pool future; surface it instead.
            try {
                if (state->error) {
                    state->callback(Result(state->numClbits),
                                    state->error);
                    return;
                }
                Result merged(state->numClbits);
                for (Result &shard_result : state->parts)
                    merged.merge(shard_result);
                state->callback(std::move(merged), nullptr);
            } catch (const std::exception &e) {
                logWarn(std::string("submitAsync completion callback "
                                    "threw: ") +
                        e.what());
            } catch (...) {
                logWarn("submitAsync completion callback threw a "
                        "non-standard exception");
            }
        });
    }
}

AssertionReport
ExecutionEngine::runInstrumented(const InstrumentedCircuit &inst,
                                 std::size_t shots,
                                 const std::string &backend,
                                 std::uint64_t seed,
                                 const NoiseModel *noise,
                                 Result *result_out)
{
    const Result result =
        run(inst.circuit(), shots, backend, seed, noise);
    if (result_out != nullptr)
        *result_out = result;
    return analyze(inst, result);
}

} // namespace runtime
} // namespace qra
