#include "runtime/thread_pool.hh"

#include "common/error.hh"

namespace qra {
namespace runtime {

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreads();
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

std::size_t
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

bool
ThreadPool::runOne()
{
    std::function<void()> task;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (queue_.empty())
            return false;
        task = std::move(queue_.front());
        queue_.pop_front();
    }
    task();
    return true;
}

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            QRA_FATAL("task submitted to a stopping thread pool");
        queue_.push_back(std::move(task));
    }
    wake_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock,
                       [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ with a drained queue
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // exceptions land in the packaged_task's future
    }
}

} // namespace runtime
} // namespace qra
