/**
 * @file
 * CancelToken: cooperative cancellation + deadlines for runtime jobs.
 *
 * A token is a value-type handle onto shared atomic state: every copy
 * observes (and may trigger) the same cancellation, so a caller keeps
 * one copy, hands another to the Job, and calls cancel() whenever it
 * wants the runtime to wind the job down. The engine polls the token
 * at shard starts and wave boundaries — cancellation is cooperative
 * and shard-granular, never preemptive: shards already running finish,
 * shards not yet started are skipped (fixed-budget paths) or never
 * launched (adaptive waves), and the delivered Result is the merge of
 * exactly the shards that completed, stamped cancelled().
 *
 * Deadlines ride the same state: the engine arms the token with a
 * monotonic-clock expiry at dispatch (Job::deadlineMs), and poll()
 * latches the token to CancelReason::Deadline the first time the
 * clock passes it — after which the clock is never read again and
 * every copy observes the same cancelled state.
 */

#ifndef QRA_RUNTIME_CANCEL_HH
#define QRA_RUNTIME_CANCEL_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace qra {
namespace runtime {

/** Why a job was cancelled. */
enum class CancelReason : int
{
    None = 0,
    /** An explicit CancelToken::cancel() call. */
    User = 1,
    /** The job's deadline passed (Job::deadlineMs). */
    Deadline = 2,
};

/** Stable lowercase name: "none", "user", "deadline". */
const char *cancelReasonName(CancelReason reason);

/**
 * Shared-state cancellation handle (see file comment). Methods are
 * const because copies alias one state — like shared_ptr, the handle
 * is immutable while the state it points at is not. All state
 * accesses are atomic; tokens may be polled and cancelled from any
 * thread concurrently.
 */
class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** A fresh, unarmed, uncancelled token. */
    CancelToken() : state_(std::make_shared<State>()) {}

    /**
     * Latch the token cancelled. Idempotent; the first reason wins
     * (a user cancel racing a deadline keeps whichever latched
     * first).
     */
    void cancel(CancelReason reason = CancelReason::User) const;

    /** True once cancel() latched (flag read only, no clock read). */
    bool cancelled() const
    {
        return state_->reason.load(std::memory_order_acquire) !=
               static_cast<int>(CancelReason::None);
    }

    /** The latched reason (None while not cancelled). */
    CancelReason reason() const
    {
        return static_cast<CancelReason>(
            state_->reason.load(std::memory_order_acquire));
    }

    /**
     * Arm (or re-arm) the deadline; poll() latches the token to
     * CancelReason::Deadline once the monotonic clock passes it.
     */
    void armDeadline(Clock::time_point deadline) const;

    /** True when armDeadline was called. */
    bool deadlineArmed() const
    {
        return state_->hasDeadline.load(std::memory_order_acquire);
    }

    /**
     * The poll the engine runs at shard starts and wave boundaries:
     * cancelled(), plus the deadline check (latching Deadline on
     * expiry). One relaxed load when unarmed and not cancelled.
     */
    bool poll() const;

  private:
    struct State
    {
        std::atomic<int> reason{static_cast<int>(CancelReason::None)};
        std::atomic<bool> hasDeadline{false};
        /** Expiry as steady-clock ns-since-epoch (atomic: no torn
            reads of a time_point). */
        std::atomic<std::int64_t> deadlineNs{0};
    };

    std::shared_ptr<State> state_;
};

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_CANCEL_HH
