/**
 * @file
 * ExecutionEngine: sharded, deterministic, multi-threaded circuit
 * execution over registry backends.
 *
 * A job's shot budget is split into shards by a plan that depends
 * only on the job (shots, seed, backend capabilities, engine shard
 * options) — never on the thread count. Each shard runs on the
 * thread pool with an RNG stream split from the job seed by shard
 * index, and the partial Results are merged in shard order, so the
 * merged counts for a fixed seed are bit-identical whether the
 * engine drives 1 thread or 64.
 */

#ifndef QRA_RUNTIME_EXECUTION_ENGINE_HH
#define QRA_RUNTIME_EXECUTION_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "assertions/injector.hh"
#include "assertions/report.hh"
#include "circuit/circuit.hh"
#include "noise/noise_model.hh"
#include "runtime/backend_registry.hh"
#include "runtime/cancel.hh"
#include "runtime/checkpoint.hh"
#include "runtime/fault.hh"
#include "runtime/retry.hh"
#include "runtime/stopping.hh"
#include "runtime/thread_pool.hh"
#include "sim/kernels/plan.hh"
#include "sim/kernels/plan_cache.hh"
#include "sim/result.hh"

namespace qra {
namespace runtime {

/** One unit of work: a circuit, a shot budget, and how to run it. */
struct Job
{
    std::shared_ptr<const Circuit> circuit;
    std::size_t shots = 1024;
    /** Registry name, or "auto" to let the registry pick. */
    std::string backend = "auto";
    std::uint64_t seed = 7;
    /** Not owned; must outlive the job's execution. */
    const NoiseModel *noise = nullptr;

    /**
     * Shared artifact cache (lowered plans, trajectory plans, sampled
     * distributions) installed around every shard of this job; null =
     * each shard compiles locally. The JobQueue sets its own cache
     * here so repeated jobs skip lowering and distribution builds.
     */
    std::shared_ptr<kernels::PlanCache> artifacts;

    /**
     * Early-stopping policy for the adaptive entry points
     * (runAdaptive/submitAdaptive). When the convergence target is
     * unset the adaptive paths still execute in waves but always run
     * the full budget. Ignored by run()/submit()/submitAsync().
     */
    StoppingRule stopping;

    /**
     * Decode bookkeeping for the stopping rule's assertion
     * statistics (and for resolving OutcomeProbability over payload
     * bits). Required for AnyError/CheckError rules; may be null
     * otherwise.
     */
    std::shared_ptr<const InstrumentedCircuit> instrumented;

    /**
     * Cooperative cancellation handle. Keep a copy and call
     * cancel(): fixed-budget paths skip every shard not yet started,
     * adaptive paths stop at the next wave boundary (in-flight wave
     * shards always finish so checkpoints stay wave-aligned). The
     * delivered Result is the merge of exactly the shards that
     * completed — bit-identical to those shards of an uncancelled
     * run — stamped cancelled().
     */
    CancelToken cancel;

    /**
     * Wall-clock deadline in milliseconds from dispatch; <= 0 = none.
     * Armed on the cancel token at dispatch, so expiry behaves
     * exactly like cancel() with reason "deadline".
     */
    double deadlineMs = 0.0;

    /** Re-run policy for transiently failed shards (see retry.hh).
        Retried shards reuse their original RNG stream, so a recovered
        job is bit-identical to a fault-free one. */
    RetryPolicy retry;

    /**
     * Fault-injection plan for this job; null = the process-wide
     * QRA_FAULTS plan (itself usually null). Test/bench hook — see
     * fault.hh.
     */
    std::shared_ptr<const FaultPlan> faults;

    /**
     * Checkpoint sink for the adaptive paths: when set, the engine
     * writes the job's resumable cursor here at completion,
     * cancellation, and wave failure (see checkpoint.hh). Ignored by
     * the fixed-budget paths.
     */
    std::shared_ptr<JobCheckpoint> checkpoint;

    /**
     * Resume source for the adaptive paths: skip the shards a prior
     * run already merged. Must match this job's circuit, seed, and
     * budget (validated synchronously); the stopping rule may differ.
     */
    std::shared_ptr<const JobCheckpoint> resumeFrom;

    Job() = default;

    /** Convenience: copies @p circuit into shared ownership. */
    Job(Circuit circuit_value, std::size_t shots_value,
        std::string backend_name = "auto", std::uint64_t seed_value = 7,
        const NoiseModel *noise_model = nullptr)
        : circuit(std::make_shared<Circuit>(std::move(circuit_value))),
          shots(shots_value), backend(std::move(backend_name)),
          seed(seed_value), noise(noise_model)
    {
    }
};

/** Engine tuning knobs. */
struct EngineOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;

    /**
     * Target shots per shard. Shard count is
     * clamp(ceil(shots / shardShots), 1, maxShards) and is part of
     * the deterministic shard plan: changing it changes the sampled
     * counts (like changing the seed), changing `threads` does not.
     */
    std::size_t shardShots = 1024;

    /** Upper bound on shards per job. */
    std::size_t maxShards = 64;

    /**
     * Amplitude-loop lanes per shard (intra-shot parallelism). 0 =
     * auto: leftover pool capacity is split across the job's shards
     * (threads / shard count), so one big-circuit job uses the whole
     * pool while a many-shard job stays at one lane per shard —
     * shards and lanes share the single engine pool either way, so
     * the machine is never oversubscribed. Lane count never affects
     * results: amplitude splits are bit-deterministic.
     */
    std::size_t intraThreads = 0;

    /**
     * Plan fusion level installed around backend runs (see
     * kernels::kFusionNone/1q/2q). Changing it changes which kernels
     * execute — results stay equivalent but, like changing the seed,
     * sampled counts are not bit-identical across levels.
     */
    int fusionLevel = kernels::kFusionDefault;

    /**
     * SIMD dispatch tier installed around backend runs: -1 = auto
     * (cpuid-detected, QRA_SIMD-overridable), otherwise a
     * kernels::simd::Tier value (0 scalar, 1 portable, 2 avx2,
     * 3 avx512), clamped to what the CPU and build support. Unlike
     * fusionLevel, the tier never changes results — every tier is
     * bit-identical to the scalar oracle, for gate updates and
     * measurement reductions alike.
     */
    int simdTier = -1;

    /**
     * Cache-tile budget (bytes) for blocked pair traversal, installed
     * per shard (kernels::CacheBlockScope): 0 = the process default
     * (1 MiB or QRA_CACHE_BLOCK). Values round down to a power of two
     * with a 4 KiB floor. Like simdTier this is a pure locality knob —
     * Linear and Blocked traversal are bit-identical — so per-plan
     * tuning (e.g. a smaller budget on a cache-starved host) never
     * changes counts.
     */
    std::size_t cacheBlockBytes = 0;
};

/** One entry of a job's deterministic shard plan. */
struct Shard
{
    std::size_t shots = 0;
    std::uint64_t seed = 0;
};

/** Sharded multi-threaded executor over registry backends. */
class ExecutionEngine
{
  public:
    /** @param registry Defaults to the global registry. */
    explicit ExecutionEngine(EngineOptions options = {},
                             BackendRegistry *registry = nullptr);

    /** Shorthand for EngineOptions{.threads = threads}. */
    explicit ExecutionEngine(std::size_t threads);

    std::size_t threads() const { return pool_.size(); }
    const EngineOptions &options() const { return options_; }
    BackendRegistry &registry() const { return *registry_; }

    /**
     * The shard plan for @p shots shots under @p seed: shot budget
     * split near-evenly, per-shard seeds derived via splitSeed.
     * Backends with shardable=false get a single shard.
     */
    std::vector<Shard> shardPlan(std::size_t shots, std::uint64_t seed,
                                 const Backend &backend) const;

    /**
     * Execute @p job synchronously; shards run on the pool while the
     * calling thread merges. @throws SimulationError/ValueError on
     * unsupported circuits or unknown backend names.
     */
    Result run(const Job &job);

    /** Convenience: run a circuit without building a Job by hand. */
    Result run(const Circuit &circuit, std::size_t shots,
               const std::string &backend = "auto",
               std::uint64_t seed = 7,
               const NoiseModel *noise = nullptr);

    /**
     * Dispatch @p job's shards to the pool immediately and return a
     * future that merges them on get(). The merge runs on whichever
     * thread calls get(), so waiting never deadlocks the pool.
     */
    std::future<Result> submit(Job job);

    /**
     * Completion callback of submitAsync: the merged Result, or — if
     * any shard threw — a default Result plus the first shard's
     * exception.
     */
    using Completion = std::function<void(Result, std::exception_ptr)>;

    /**
     * Dispatch @p job's shards and deliver the merged Result through
     * @p onComplete instead of a future. The last shard to finish
     * merges (in shard order, so counts are bit-identical to run())
     * and invokes the callback *on a pool thread*: callbacks must not
     * block on pool work they themselves wait for, but may submit new
     * jobs. Errors during dispatch (unknown backend, rejected
     * circuit) still throw synchronously. Callbacks should not throw;
     * an exception escaping one is logged as a warning and dropped
     * (there is no future to carry it).
     */
    void submitAsync(Job job, Completion onComplete);

    /**
     * Streaming callback of the adaptive entry points: the merged
     * partial Result after each wave plus the stopping evaluation.
     * Invoked on a pool thread, strictly between waves (never
     * concurrently with shard execution of the same job), so the
     * partial may be read without locking but must not be retained
     * past the callback's return — the next wave mutates it.
     */
    using Progress =
        std::function<void(const Result &, const StoppingStatus &)>;

    /**
     * Adaptive wave-based execution with early stopping. The job's
     * shot budget (stopping.maxShots, defaulting to job.shots) is
     * laid out as the usual deterministic shard plan, and the shards
     * execute in waves of ~stopping.waveShots shots. After each wave
     * the merged-so-far Result is evaluated against the stopping
     * rule; @p onProgress (optional) streams the partial result, and
     * the run ends early once the watched statistic's Wilson 95%
     * half-width reaches the target (past any minShots floor).
     *
     * Determinism: waves partition the budget's shard plan by shard
     * index, and waves merge in shard order, so a run that executes
     * the whole budget is bit-identical to run() with the same total
     * at ANY thread/wave/shard setting. An early-stopped run equals
     * run() of the shots actually taken whenever those form the same
     * shard decomposition — guaranteed when the budget is a multiple
     * of shardShots and within maxShards (uniform shard plan).
     *
     * The final Result carries shotsRequested() = budget and
     * stoppedEarly() when it converged with budget to spare.
     */
    Result runAdaptive(const Job &job, Progress onProgress = nullptr);

    /**
     * Asynchronous form of runAdaptive: shards of the current wave go
     * to the pool; the last shard of each wave merges (in shard
     * order), evaluates the rule, invokes @p onProgress on its pool
     * thread, and either launches the next wave or delivers the final
     * Result through @p onComplete (also on a pool thread). Both
     * callbacks follow submitAsync's rules: they must not block on
     * pool work they wait for themselves, and should not throw.
     */
    void submitAdaptive(Job job, Progress onProgress,
                        Completion onComplete);

    /**
     * Assertion-flow entry point: execute an instrumented circuit and
     * decode the assertion report from the merged result.
     *
     * @param result_out Optional sink for the merged raw Result.
     */
    AssertionReport runInstrumented(const InstrumentedCircuit &inst,
                                    std::size_t shots,
                                    const std::string &backend = "auto",
                                    std::uint64_t seed = 7,
                                    const NoiseModel *noise = nullptr,
                                    Result *result_out = nullptr);

  private:
    std::vector<std::future<Result>>
    dispatch(const Job &job, const BackendPtr &backend,
             const std::shared_ptr<std::atomic<std::size_t>> &retries);

    /** Reject invalid jobs and resolve intra-shot lane budget. */
    std::size_t checkAndLaneCount(const Job &job,
                                  const BackendPtr &backend,
                                  std::size_t shard_count) const;

    /**
     * The per-shard execution closure shared by all submit paths:
     * cancellation poll (skip_on_cancel = fixed-budget paths only;
     * adaptive wave shards always run so waves complete atomically),
     * fault injection at @p shard_index, and the transient-failure
     * retry loop (attempts re-counted into @p retries when non-null).
     */
    std::function<Result()>
    shardRunner(const Job &job, const BackendPtr &backend,
                const Shard &shard, std::size_t lanes,
                std::size_t shard_index, bool skip_on_cancel,
                std::shared_ptr<std::atomic<std::size_t>> retries);

    EngineOptions options_;
    BackendRegistry *registry_;
    ThreadPool pool_;
};

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_EXECUTION_ENGINE_HH
