#include "runtime/checkpoint.hh"

#include <sstream>

namespace qra {
namespace runtime {

std::string
JobCheckpoint::str() const
{
    std::ostringstream out;
    if (!valid())
        return "checkpoint(invalid)";
    out << "checkpoint(shard " << nextShard << "/" << planShards
        << ", wave " << wave << ", " << merged.shots() << "/"
        << budget << " shots";
    if (exhausted())
        out << ", exhausted";
    out << ")";
    return out.str();
}

} // namespace runtime
} // namespace qra
