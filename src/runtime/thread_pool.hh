/**
 * @file
 * Fixed-size worker pool used by the execution engine to run shot
 * shards concurrently. Tasks are arbitrary callables; submit()
 * returns a std::future for the callable's result, with exceptions
 * propagated through the future.
 */

#ifndef QRA_RUNTIME_THREAD_POOL_HH
#define QRA_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace qra {
namespace runtime {

/** Fixed set of worker threads draining a FIFO task queue. */
class ThreadPool
{
  public:
    /**
     * @param threads Worker count; 0 means defaultThreads(). With one
     *        worker the pool still runs tasks on that worker, so
     *        submission never executes inline.
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers after draining queued tasks. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t size() const { return workers_.size(); }

    /** Hardware concurrency, floored at 1. */
    static std::size_t defaultThreads();

    /**
     * Pop and run one queued task on the calling thread, if any.
     *
     * @return true if a task was executed. Lets a thread that is
     *         waiting on tasks it submitted help drain the queue
     *         instead of blocking, so nested submission (a pool task
     *         that itself fans work out to the same pool) can never
     *         deadlock the pool.
     */
    bool runOne();

    /** Queue @p task; the future resolves when a worker finishes it. */
    template <typename F>
    auto
    submit(F &&task) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        auto packaged = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(task));
        std::future<R> future = packaged->get_future();
        post([packaged]() { (*packaged)(); });
        return future;
    }

  private:
    void post(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable wake_;
    bool stopping_ = false;
};

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_THREAD_POOL_HH
