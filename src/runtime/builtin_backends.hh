/**
 * @file
 * Backend wrappers for the four simulator classes, plus the hook that
 * registers them all with a BackendRegistry under their canonical
 * names: "statevector", "density", "trajectory", "stabilizer".
 */

#ifndef QRA_RUNTIME_BUILTIN_BACKENDS_HH
#define QRA_RUNTIME_BUILTIN_BACKENDS_HH

#include "runtime/backend.hh"

namespace qra {
namespace runtime {

class BackendRegistry;

/** Ideal state-vector backend ("statevector"). */
BackendPtr makeStatevectorBackend();

/** Exact noisy density-matrix backend ("density"). */
BackendPtr makeDensityBackend();

/** Monte-Carlo trajectory backend ("trajectory"). */
BackendPtr makeTrajectoryBackend();

/** Clifford stabilizer-tableau backend ("stabilizer"). */
BackendPtr makeStabilizerBackend();

/** Register all four builtin backends with @p registry. */
void registerBuiltinBackends(BackendRegistry &registry);

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_BUILTIN_BACKENDS_HH
