/**
 * @file
 * JobQueue: the batch front-end of the runtime.
 *
 * Submit many (circuit, shots, backend, noise) jobs, get a future (or
 * a completion callback) per job; shards of all in-flight jobs
 * interleave on the engine's thread pool. Preparation — assertion
 * injection and device transpilation — runs through the declarative
 * compile::preparePipeline and is memoised in a cache keyed by
 * (Circuit::hash(), coupling map, pipeline fingerprint), so
 * resubmitting the same circuit (the bench suite's dominant pattern:
 * thousands of shot-jobs over a handful of circuits) skips straight
 * to execution.
 */

#ifndef QRA_RUNTIME_JOB_QUEUE_HH
#define QRA_RUNTIME_JOB_QUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "assertions/injector.hh"
#include "compile/pipelines.hh"
#include "runtime/execution_engine.hh"
#include "sim/kernels/plan_cache.hh"
#include "transpile/coupling_map.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace runtime {

/** One batch request: a Job plus optional preparation steps. */
struct JobSpec
{
    Circuit circuit{1};
    std::size_t shots = 1024;
    std::string backend = "auto";
    std::uint64_t seed = 7;
    /** Not owned; must outlive execution. */
    const NoiseModel *noise = nullptr;

    /**
     * Assertion checks to inject before execution (cached by payload
     * hash). Empty = run the circuit as-is.
     */
    std::vector<AssertionSpec> assertions;

    /**
     * Device coupling map to transpile to (cached together with the
     * injection step). Not owned; null = no transpilation.
     */
    const CouplingMap *coupling = nullptr;

    /**
     * Transpilation knobs (layout strategy, peephole optimisation).
     * Part of the preparation-cache key whenever a coupling map is
     * set, so jobs that transpile differently can never share a
     * prepared circuit — and therefore never share stale sampling
     * artifacts either.
     */
    TranspileOptions transpileOptions;

    /**
     * Instrumentation knobs (ancilla reuse, barriers). Part of the
     * preparation-cache key whenever assertions are present; inert —
     * and excluded from the key — otherwise.
     */
    InstrumentOptions instrumentOptions;

    /**
     * Where assertion checks enter the compile pipeline. PostLayout
     * pins ancillas next to their targets on the device (fewer routed
     * SWAPs); it participates in the prepare key only when both
     * assertions and a coupling map are present.
     */
    compile::InjectionStrategy injection =
        compile::InjectionStrategy::PreLayout;

    /**
     * Budget for InjectionStrategy::AutoGenerate (max checks, min
     * prefix depth). Part of the prepare key only when the strategy
     * is AutoGenerate (the auto-assert pass folds it); inert
     * otherwise.
     */
    compile::AutoAssertOptions autoAssert;

    /**
     * Early-stopping policy. When its convergence target is set,
     * submissions of this spec execute in shot waves and stop as
     * soon as the watched statistic's Wilson 95% half-width reaches
     * the target — the delivered Result then carries stoppedEarly()
     * and shotsRequested(). Assertion statistics (AnyError,
     * CheckError) require `assertions` to be non-empty. Not part of
     * the prepare key: the rule changes how many shots run, never
     * the prepared circuit, so adaptive resubmissions share cache
     * entries (and warm sampling artifacts) with fixed ones.
     */
    StoppingRule stopping;

    /**
     * Lifecycle knobs, forwarded verbatim to the engine Job (see
     * execution_engine.hh). None participate in the prepare key:
     * they change how a job executes, never the prepared circuit.
     */
    /** Cooperative cancellation handle (keep a copy, call cancel()). */
    CancelToken cancel;
    /** Wall-clock deadline in ms from dispatch; <= 0 = none. */
    double deadlineMs = 0.0;
    /** Re-run policy for transiently failed shards. */
    RetryPolicy retry;
    /** Fault-injection plan; null = the process-wide QRA_FAULTS one. */
    std::shared_ptr<const FaultPlan> faults;
    /** Checkpoint sink; setting it routes the spec through the wave
        engine even when the stopping rule is disabled. */
    std::shared_ptr<JobCheckpoint> checkpoint;
    /** Resume source (also routes through the wave engine). */
    std::shared_ptr<const JobCheckpoint> resumeFrom;
};

/**
 * The declarative compile recipe for @p spec — the pipeline
 * JobQueue::prepare runs, exposed so tools can introspect it
 * (qra_run --dump-pipeline) without submitting anything.
 */
compile::PrepareSpec prepareSpec(const JobSpec &spec);

/** Batch submission with a prepare (transpile/inject) cache. */
class JobQueue
{
  public:
    /** @param engine Not owned; must outlive the queue. */
    explicit JobQueue(ExecutionEngine &engine);

    /**
     * Prepare @p spec (inject assertions, transpile), reusing the
     * cache when an identical circuit was prepared before, and hand
     * the resulting job to the engine. The future resolves to the
     * merged Result when every shard has run. Specs whose stopping
     * rule is enabled execute adaptively (in waves, stopping early
     * on convergence); the future then resolves to the partial-but-
     * converged Result.
     */
    std::future<Result> submit(const JobSpec &spec);

    /** See ExecutionEngine::Completion. */
    using Completion = ExecutionEngine::Completion;

    /** See ExecutionEngine::Progress. */
    using Progress = ExecutionEngine::Progress;

    /**
     * Future-free submission: prepare @p spec, hand it to the engine,
     * and deliver the merged Result through @p onComplete on a pool
     * thread when the last shard finishes — no thread ever parks in a
     * join, so a caller can stream thousands of jobs and consume
     * results as they land. The callback must not block on pool work
     * it waits for itself; submitting follow-up jobs is fine. The
     * queue must outlive all outstanding callbacks (use waitIdle()).
     */
    void submit(const JobSpec &spec, Completion onComplete);

    /**
     * Streaming submission: like submit(spec, onComplete) but the
     * job always executes in waves (adaptive path) and @p onProgress
     * receives the merged partial Result plus the stopping evaluation
     * after every wave, on a pool thread. Useful both for live
     * dashboards over fixed-budget jobs (rule disabled: every wave
     * runs) and for confidence-driven early stopping (rule enabled).
     */
    void submit(const JobSpec &spec, Progress onProgress,
                Completion onComplete);

    /** Block until every callback submission has completed. */
    void waitIdle();

    /** Submit every spec, then wait for all results, in order. */
    std::vector<Result> runAll(const std::vector<JobSpec> &specs);

    /**
     * The instrumented form of @p spec's circuit, as submit() would
     * prepare it. Use it to decode Results of jobs with assertions.
     */
    std::shared_ptr<const InstrumentedCircuit>
    instrumented(const JobSpec &spec);

    /**
     * The static-analysis result of @p spec's pipeline (memoised with
     * the prepared circuit), or null when the pipeline runs no
     * analysis stage (injection != AutoGenerate). Introspection only:
     * leaves the cache statistics untouched.
     */
    std::shared_ptr<const compile::analysis::CircuitAnalysis>
    analysis(const JobSpec &spec);

    /**
     * Prepared-circuit cache hits since construction. Only submit()
     * counts toward the hit/miss statistics; instrumented() is
     * introspection and leaves them untouched. Per-queue thin reads;
     * when metrics are enabled the same events also feed the global
     * registry counters `jobqueue.prepare_cache.hits/misses`.
     */
    std::size_t cacheHits() const;

    /** Prepared-circuit cache misses since construction. */
    std::size_t cacheMisses() const;

    /**
     * The cross-job sampling/artifact cache this queue installs
     * around every job it submits: lowered plans, noisy trajectory
     * plans, and sampled-execution alias tables, keyed by (circuit
     * hash, noise fingerprint, fusion level). Hit/miss counters live
     * on its stats().
     */
    std::shared_ptr<kernels::PlanCache> artifactCache() const;

    /**
     * Artifact-cache hits (shards or jobs that skipped a build).
     * Thin read of the PlanCache's per-instance stats; the global
     * registry mirrors them as `plan_cache.hits/misses/evictions`.
     */
    std::size_t samplingCacheHits() const;

    /** Artifact-cache misses (builds actually performed). */
    std::size_t samplingCacheMisses() const;

    void clearCache();

  private:
    struct Prepared
    {
        /** Final executable circuit (injected + transpiled). */
        std::shared_ptr<const Circuit> circuit;
        /** Set when the spec requested assertion injection. */
        std::shared_ptr<const InstrumentedCircuit> instrumented;
        /** Set when the pipeline ran an analysis stage. */
        std::shared_ptr<const compile::analysis::CircuitAnalysis>
            analysis;
    };

    /** How one submission's preparation went (for ExecStats). */
    struct PrepInfo
    {
        bool cacheHit = false;
        double seconds = 0.0;
    };

    /**
     * Cache key: payload hash x coupling-map data x pipeline
     * fingerprint. The fingerprint covers the full declarative recipe
     * — transpile options, instrumentation options, injection
     * strategy, and *semantic* assertion fingerprints (type, targets,
     * insertAt, repetitions) — so semantically identical
     * resubmissions hit even with distinct assertion objects, and a
     * recycled pointer can never alias a different assertion.
     */
    static std::uint64_t prepareKey(const JobSpec &spec,
                                    std::uint64_t pipeline_fingerprint);

    /**
     * Single-flight preparation: the first submission of a key
     * builds (outside the lock) while concurrent submissions of the
     * same key wait on its shared future and count as cache hits —
     * the batch pattern never compiles one circuit twice. A build
     * that throws evicts its in-flight entry before propagating, so
     * the key is never poisoned: the next submission simply builds
     * again.
     *
     * @param count_stats False for introspection-only lookups.
     * @param info Optional sink for cache-hit/timing bookkeeping.
     */
    std::shared_ptr<const Prepared> prepare(const JobSpec &spec,
                                            bool count_stats,
                                            PrepInfo *info = nullptr);

    /** Prepare @p spec and assemble the engine Job (incl. stopping). */
    Job makeJob(const JobSpec &spec, PrepInfo *info = nullptr);

    /**
     * Wrap @p onComplete so the delivered Result carries the
     * preparation bookkeeping in its ExecStats and the submit-to-
     * complete latency lands in the queue's histogram.
     */
    Completion stamped(Completion onComplete, PrepInfo info);

    /**
     * Dispatch @p job with outstanding-callback tracking; @p adaptive
     * selects the wave engine (forced for streaming submissions even
     * when the rule is disabled).
     */
    void submitTracked(Job job, Progress onProgress,
                       Completion onComplete, bool adaptive);

    ExecutionEngine &engine_;
    mutable std::mutex mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const Prepared>>
        cache_;
    /** Keys being built right now (single-flight); a failed build
        erases its entry, so the map only ever holds live builds. */
    std::unordered_map<
        std::uint64_t,
        std::shared_future<std::shared_ptr<const Prepared>>>
        inflight_;
    std::shared_ptr<kernels::PlanCache> artifacts_;
    std::size_t hits_ = 0;
    std::size_t misses_ = 0;
    /** Prepare builds started (the fault injector's attempt index). */
    std::atomic<std::size_t> prepareAttempts_{0};

    /** Callback submissions in flight (waitIdle watches this). */
    std::size_t outstanding_ = 0;
    std::condition_variable idle_;
};

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_JOB_QUEUE_HH
