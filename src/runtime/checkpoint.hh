/**
 * @file
 * JobCheckpoint: the resumable cursor of an adaptive (wave-based) job.
 *
 * An adaptive job's progress is fully described by its position in
 * the deterministic shard plan: the merged counts so far, the index
 * of the next shard to launch, and the last stopping evaluation.
 * Because the plan depends only on (budget, seed, shardShots,
 * maxShards) and shard i always draws from splitSeed(seed, i), a job
 * resumed from a checkpoint with the same plan parameters replays the
 * exact shards an uninterrupted run would have executed — the resumed
 * result is bit-identical and total shots never exceed the
 * uninterrupted run's.
 *
 * The engine writes a checkpoint whenever Job::checkpoint is set: at
 * job completion (converged, exhausted, or cancelled at a wave
 * boundary) and — with the cursor rewound to the failing wave's first
 * shard — when a wave fails, so no shots are silently skipped on
 * resume after an error. To resume, put the checkpoint in
 * Job::resumeFrom (or JobSpec::resumeFrom) of a job with the same
 * circuit, seed, and budget; the engine validates the match and
 * continues from nextShard. The stopping rule may differ — resuming
 * with a tighter half-width target is the intended way to refine an
 * estimate without re-running completed shots.
 */

#ifndef QRA_RUNTIME_CHECKPOINT_HH
#define QRA_RUNTIME_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "runtime/stopping.hh"
#include "sim/result.hh"

namespace qra {
namespace runtime {

/** Resumable cursor of an adaptive job (see file comment). */
struct JobCheckpoint
{
    /** Hash of the circuit the shards ran (resume must match). */
    std::uint64_t circuitHash = 0;

    /** Base seed of the shard plan (resume must match). */
    std::uint64_t seed = 0;

    /** Shot budget of the plan (resume must match). */
    std::size_t budget = 0;

    /** Shard count of the plan — a cheap guard that the resuming
        engine's shardShots/maxShards produce the same decomposition. */
    std::size_t planShards = 0;

    /** Index of the next shard to launch (shards [0, nextShard) are
        merged). */
    std::size_t nextShard = 0;

    /** Index of the next wave (waves [0, wave) completed). */
    std::size_t wave = 0;

    /** Merge of the completed shards, in shard order. */
    Result merged;

    /** The stopping evaluation after the last completed wave. */
    StoppingStatus lastStatus;

    /** True once the engine has written the checkpoint. */
    bool valid() const { return budget > 0 && planShards > 0; }

    /** True when every shard of the plan is merged — resuming runs
        nothing and just re-delivers `merged`. */
    bool exhausted() const { return nextShard >= planShards; }

    /** One-line human-readable summary. */
    std::string str() const;
};

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_CHECKPOINT_HH
