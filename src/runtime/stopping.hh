/**
 * @file
 * Confidence-driven early stopping for wave-based execution.
 *
 * A StoppingRule watches one statistic of a job's (partial) Result —
 * the any-error rate of its assertion checks, one check's error rate,
 * or a named outcome's probability — and asks the engine to stop
 * launching shot waves once the statistic's 95% Wilson confidence
 * half-width is at or below a target. The assertion statistics are
 * the paper's trap/assertion error rates; tightening their interval
 * is exactly the amplitude-estimation workload, so adaptive shots
 * stop as soon as the estimate is good enough instead of burning a
 * fixed budget.
 */

#ifndef QRA_RUNTIME_STOPPING_HH
#define QRA_RUNTIME_STOPPING_HH

#include <cstddef>
#include <string>

#include "assertions/injector.hh"
#include "sim/result.hh"

namespace qra {
namespace runtime {

/** When to stop launching shot waves. */
struct StoppingRule
{
    /** Which statistic the confidence target watches. */
    enum class Statistic
    {
        /** P(any assertion check flagged an error). */
        AnyError,
        /** P(check `checkIndex` flagged an error). */
        CheckError,
        /** P(register/payload outcome == `outcome`). */
        OutcomeProbability,
    };

    Statistic statistic = Statistic::AnyError;

    /** Check index for Statistic::CheckError. */
    std::size_t checkIndex = 0;

    /**
     * Outcome bitstring for Statistic::OutcomeProbability, e.g.
     * "011". Decoded over the payload bits when the job carries an
     * instrumented circuit, over the full register otherwise.
     */
    std::string outcome;

    /**
     * Stop once the statistic's 95% Wilson half-width is <= this.
     * <= 0 disables convergence: every wave of the budget runs (the
     * wave decomposition itself stays deterministic either way).
     */
    double targetHalfWidth = 0.0;

    /** Never stop before this many shots (0 = no floor). */
    std::size_t minShots = 0;

    /**
     * Hard shot budget. 0 = the job's own shot count. The engine
     * never exceeds it, converged or not.
     */
    std::size_t maxShots = 0;

    /**
     * Target shots per wave; rounded up to whole shards of the
     * budget's deterministic shard plan (waves partition the shard
     * index space, which is what keeps waved counts bit-identical to
     * a single block). 0 = auto: the whole plan in one wave when no
     * convergence target is set (full shard parallelism, run()'s
     * schedule), about one shard per pool thread otherwise.
     */
    std::size_t waveShots = 0;

    /** True when a convergence target is set. */
    bool enabled() const { return targetHalfWidth > 0.0; }
};

/** Progress of an adaptive run, delivered after every wave. */
struct StoppingStatus
{
    /** Waves completed so far (1 after the first wave). */
    std::size_t wave = 0;

    /** Shots merged so far. */
    std::size_t shotsDone = 0;

    /** Full shot budget of the run. */
    std::size_t shotsRequested = 0;

    /** Point estimate of the watched statistic. */
    double estimate = 0.0;

    /** 95% Wilson half-width of the estimate. */
    double halfWidth = 1.0;

    /** Half-width target met (and past any minShots floor). */
    bool converged = false;

    /** No further waves will run (converged, budget exhausted, or
        cancelled). */
    bool finished = false;

    /** The job's CancelToken fired (or its deadline passed) at this
        wave boundary; shotsDone holds the shots actually merged. */
    bool cancelled = false;

    /** Converged with budget to spare. */
    bool stoppedEarly() const
    {
        return finished && !cancelled && shotsDone < shotsRequested;
    }

    /** One-line summary, e.g. "wave 3: 768/8192 shots, ...". */
    std::string str() const;
};

/**
 * Evaluate @p rule against a partial result: the statistic's point
 * estimate and its Wilson half-width, plus the convergence flag
 * (half-width <= target and shots >= minShots).
 *
 * @param instrumented Decode bookkeeping for the assertion
 *        statistics; may be null for OutcomeProbability.
 * @throws ValueError when the statistic needs bookkeeping the caller
 *         did not provide (assertion statistics without an
 *         instrumented circuit, a check index out of range, or an
 *         empty/unparsable outcome string).
 */
StoppingStatus evaluateStopping(const StoppingRule &rule,
                                const Result &partial,
                                const InstrumentedCircuit *instrumented);

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_STOPPING_HH
