#include "runtime/job_queue.hh"

#include "common/hash.hh"
#include "transpile/transpiler.hh"

namespace qra {
namespace runtime {

JobQueue::JobQueue(ExecutionEngine &engine)
    : engine_(engine),
      artifacts_(std::make_shared<kernels::PlanCache>())
{
}

std::uint64_t
JobQueue::prepareKey(const JobSpec &spec)
{
    std::uint64_t h = spec.circuit.hash();
    // Assertion specs key by the assertion object's identity: two
    // submissions sharing spec objects hit; semantically equal but
    // distinct objects miss, which costs a re-preparation but can
    // never alias two different preparations.
    h = fnv1aMix64(h, spec.assertions.size());
    for (const AssertionSpec &a : spec.assertions) {
        h = fnv1aMix64(
            h, reinterpret_cast<std::uintptr_t>(a.assertion.get()));
        h = fnv1aMix64(h, a.insertAt);
        h = fnv1aMix64(h, a.repetitions);
        for (const Qubit q : a.targets)
            h = fnv1aMix64(h, static_cast<std::uint64_t>(q));
    }
    if (spec.coupling != nullptr) {
        h = fnv1aMix64(h, spec.coupling->numQubits());
        for (const auto &[control, target] : spec.coupling->edges()) {
            h = fnv1aMix64(h, static_cast<std::uint64_t>(control));
            h = fnv1aMix64(h, static_cast<std::uint64_t>(target));
        }
        // Transpile knobs change the prepared circuit, so they are
        // part of the key — but only when transpilation actually
        // runs, so option-only differences on untranspiled specs
        // still share one preparation.
        h = fnv1aMix64(
            h, (spec.transpileOptions.useGreedyLayout ? 1u : 0u) |
                   (spec.transpileOptions.optimize ? 2u : 0u));
    }
    return h;
}

std::shared_ptr<const JobQueue::Prepared>
JobQueue::prepare(const JobSpec &spec, bool count_stats)
{
    const std::uint64_t key = prepareKey(spec);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = cache_.find(key); it != cache_.end()) {
            if (count_stats)
                ++hits_;
            return it->second;
        }
    }

    auto prepared = std::make_shared<Prepared>();
    Circuit working = spec.circuit;
    if (!spec.assertions.empty()) {
        auto inst = std::make_shared<InstrumentedCircuit>(
            instrument(working, spec.assertions));
        working = inst->circuit();
        prepared->instrumented = std::move(inst);
    }
    if (spec.coupling != nullptr)
        working = transpile(working, *spec.coupling,
                            spec.transpileOptions)
                      .circuit;
    prepared->circuit =
        std::make_shared<const Circuit>(std::move(working));

    std::lock_guard<std::mutex> lock(mutex_);
    // A racing thread may have prepared the same key; keep the first
    // entry so every job of the batch shares one instance.
    if (const auto it = cache_.find(key); it != cache_.end()) {
        if (count_stats)
            ++hits_;
        return it->second;
    }
    if (count_stats)
        ++misses_;
    cache_[key] = prepared;
    return prepared;
}

std::future<Result>
JobQueue::submit(const JobSpec &spec)
{
    const std::shared_ptr<const Prepared> prepared =
        prepare(spec, /*count_stats=*/true);
    Job job;
    job.circuit = prepared->circuit;
    job.shots = spec.shots;
    job.backend = spec.backend;
    job.seed = spec.seed;
    job.noise = spec.noise;
    job.artifacts = artifactCache();
    return engine_.submit(std::move(job));
}

std::vector<Result>
JobQueue::runAll(const std::vector<JobSpec> &specs)
{
    std::vector<std::future<Result>> futures;
    futures.reserve(specs.size());
    for (const JobSpec &spec : specs)
        futures.push_back(submit(spec));
    std::vector<Result> results;
    results.reserve(futures.size());
    for (std::future<Result> &future : futures)
        results.push_back(future.get());
    return results;
}

std::shared_ptr<const InstrumentedCircuit>
JobQueue::instrumented(const JobSpec &spec)
{
    return prepare(spec, /*count_stats=*/false)->instrumented;
}

std::size_t
JobQueue::cacheHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
JobQueue::cacheMisses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::shared_ptr<kernels::PlanCache>
JobQueue::artifactCache() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_;
}

std::size_t
JobQueue::samplingCacheHits() const
{
    return artifactCache()->stats().hits;
}

std::size_t
JobQueue::samplingCacheMisses() const
{
    return artifactCache()->stats().misses;
}

void
JobQueue::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
    // In-flight jobs hold their own reference; swapping the artifact
    // cache leaves them untouched and starts future jobs cold.
    artifacts_ = std::make_shared<kernels::PlanCache>();
    hits_ = 0;
    misses_ = 0;
}

} // namespace runtime
} // namespace qra
