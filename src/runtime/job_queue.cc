#include "runtime/job_queue.hh"

#include "common/error.hh"
#include "common/hash.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace qra {
namespace runtime {

namespace {

/** Registered-once handles for the queue's metrics. */
struct QueueMetrics
{
    obs::CounterHandle jobs;
    obs::CounterHandle prepareHits;
    obs::CounterHandle prepareMisses;
    obs::HistogramHandle submitToCompleteNs;
};

const QueueMetrics &
queueMetrics()
{
    static const QueueMetrics metrics = []() {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        QueueMetrics m;
        m.jobs = reg.counter("jobqueue.jobs");
        m.prepareHits = reg.counter("jobqueue.prepare_cache.hits");
        m.prepareMisses =
            reg.counter("jobqueue.prepare_cache.misses");
        m.submitToCompleteNs =
            reg.histogram("jobqueue.submit_to_complete_ns");
        return m;
    }();
    return metrics;
}

} // namespace

JobQueue::JobQueue(ExecutionEngine &engine)
    : engine_(engine),
      artifacts_(std::make_shared<kernels::PlanCache>())
{
}

compile::PrepareSpec
prepareSpec(const JobSpec &spec)
{
    compile::PrepareSpec prep;
    prep.assertions = spec.assertions;
    prep.instrumentOptions = spec.instrumentOptions;
    prep.injection = spec.injection;
    prep.autoAssert = spec.autoAssert;
    prep.coupling = spec.coupling;
    prep.transpileOptions = spec.transpileOptions;
    return prep;
}

std::uint64_t
JobQueue::prepareKey(const JobSpec &spec,
                     std::uint64_t pipeline_fingerprint)
{
    std::uint64_t h = spec.circuit.hash();
    // Device data: the same recipe over a different coupling map
    // transpiles differently.
    if (spec.coupling != nullptr) {
        h = fnv1aMix64(h, spec.coupling->numQubits());
        for (const auto &[control, target] : spec.coupling->edges()) {
            h = fnv1aMix64(h, static_cast<std::uint64_t>(control));
            h = fnv1aMix64(h, static_cast<std::uint64_t>(target));
        }
    }
    // The pipeline fingerprint covers every knob that changes the
    // prepared circuit (transpile options, instrument options,
    // injection strategy, semantic assertion fingerprints) — and only
    // those: options on passes the pipeline does not contain (e.g.
    // transpile knobs without a coupling map) never fragment the
    // cache, because preparePipeline() simply leaves those passes
    // out. Building the pipeline just to fingerprint it costs a few
    // microseconds per submission; keeping the recipe's single source
    // of truth beats a hand-maintained parallel fold.
    return fnv1aMix64(h, pipeline_fingerprint);
}

std::shared_ptr<const JobQueue::Prepared>
JobQueue::prepare(const JobSpec &spec, bool count_stats,
                  PrepInfo *info)
{
    const compile::PrepareSpec prep = prepareSpec(spec);
    const compile::PassManager pipeline =
        compile::preparePipeline(prep);
    const std::uint64_t key =
        prepareKey(spec, pipeline.fingerprint());

    auto count_hit = [&]() {
        if (count_stats) {
            std::lock_guard<std::mutex> lock(mutex_);
            ++hits_;
            obs::count(queueMetrics().prepareHits);
        }
        if (info != nullptr)
            info->cacheHit = true;
    };

    // Single-flight: the first submission of a key becomes the
    // builder; racing submissions wait on its shared future instead
    // of compiling the same circuit again.
    std::promise<std::shared_ptr<const Prepared>> promise;
    std::shared_future<std::shared_ptr<const Prepared>> pending;
    bool builder = false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const auto it = cache_.find(key); it != cache_.end()) {
            if (count_stats) {
                ++hits_;
                obs::count(queueMetrics().prepareHits);
            }
            if (info != nullptr)
                info->cacheHit = true;
            return it->second;
        }
        if (const auto it = inflight_.find(key);
            it != inflight_.end()) {
            pending = it->second;
        } else {
            builder = true;
            pending = promise.get_future().share();
            inflight_[key] = pending;
        }
    }

    if (!builder) {
        // The wait is bounded by one compile::prepare on the builder
        // thread (which touches no pool work), so parking here is
        // safe even from a pool-thread callback. A failed build
        // rethrows out of get() to every waiter.
        std::shared_ptr<const Prepared> prepared = pending.get();
        count_hit();
        return prepared;
    }

    try {
        // Fault hook for the prepare pipeline (see fault.hh); the
        // attempt index counts builds across the queue's lifetime so
        // a `prepare:throw` site poisons exactly one build.
        maybeInjectFault(
            spec.faults ? spec.faults.get() : processFaultPlan(),
            FaultSite::Scope::Prepare, 0,
            prepareAttempts_.fetch_add(1, std::memory_order_relaxed));
        // One timing source of truth: the TimedSpan both feeds the
        // `prepare` trace span (when tracing) and PrepInfo.seconds.
        obs::TimedSpan span("queue", "prepare",
                            {{"ops", spec.circuit.size()}});
        compile::CompileContext ctx =
            compile::prepare(spec.circuit, prep, pipeline);
        const double prepare_seconds = span.stop();
        if (info != nullptr)
            info->seconds = prepare_seconds;
        auto prepared = std::make_shared<Prepared>();
        prepared->instrumented = ctx.instrumented;
        prepared->analysis = ctx.analysis;
        prepared->circuit =
            std::make_shared<const Circuit>(std::move(ctx.circuit));

        {
            std::lock_guard<std::mutex> lock(mutex_);
            cache_[key] = prepared;
            inflight_.erase(key);
            if (count_stats) {
                ++misses_;
                obs::count(queueMetrics().prepareMisses);
            }
        }
        promise.set_value(prepared);
        return prepared;
    } catch (...) {
        // Evict the in-flight entry BEFORE publishing the failure:
        // the key must never stay poisoned — the next submission of
        // this spec starts a fresh build rather than inheriting this
        // one's exception forever.
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

Job
JobQueue::makeJob(const JobSpec &spec, PrepInfo *info)
{
    obs::count(queueMetrics().jobs);
    const std::shared_ptr<const Prepared> prepared =
        prepare(spec, /*count_stats=*/true, info);
    Job job;
    job.circuit = prepared->circuit;
    job.shots = spec.shots;
    job.backend = spec.backend;
    job.seed = spec.seed;
    job.noise = spec.noise;
    job.artifacts = artifactCache();
    job.stopping = spec.stopping;
    job.instrumented = prepared->instrumented;
    job.cancel = spec.cancel;
    job.deadlineMs = spec.deadlineMs;
    job.retry = spec.retry;
    job.faults = spec.faults;
    job.checkpoint = spec.checkpoint;
    job.resumeFrom = spec.resumeFrom;
    return job;
}

namespace {

/** Specs with lifecycle state only the wave engine maintains
    (checkpoint sink, resume source) force the adaptive path. */
bool
needsAdaptive(const JobSpec &spec)
{
    return spec.stopping.enabled() || spec.checkpoint != nullptr ||
           spec.resumeFrom != nullptr;
}

} // namespace

JobQueue::Completion
JobQueue::stamped(Completion on_complete, PrepInfo info)
{
    const auto submitted = obs::Tracer::Clock::now();
    return [callback = std::move(on_complete), info,
            submitted](Result result, std::exception_ptr error) {
        if (!error) {
            ExecStats stats = result.execStats();
            stats.prepareCacheHit = info.cacheHit;
            stats.prepareSeconds = info.seconds;
            result.setExecStats(stats);
        }
        if (obs::metricsEnabled()) {
            const auto now = obs::Tracer::Clock::now();
            obs::observe(
                queueMetrics().submitToCompleteNs,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::nanoseconds>(now - submitted)
                        .count()));
        }
        callback(std::move(result), error);
    };
}

std::future<Result>
JobQueue::submit(const JobSpec &spec)
{
    PrepInfo info;
    Job job = makeJob(spec, &info);
    const auto submitted = obs::Tracer::Clock::now();
    std::future<Result> inner;
    if (!needsAdaptive(spec)) {
        inner = engine_.submit(std::move(job));
    } else {
        // Adaptive path: waves need a completion hook, so back the
        // future with a promise instead of the deferred-merge future.
        auto promise = std::make_shared<std::promise<Result>>();
        inner = promise->get_future();
        engine_.submitAdaptive(
            std::move(job), nullptr,
            [promise](Result result, std::exception_ptr error) {
                if (error)
                    promise->set_exception(error);
                else
                    promise->set_value(std::move(result));
            });
    }
    // Deferred stamp wrapper: runs on the consumer's get(), where the
    // merged Result exists; the latency histogram therefore measures
    // submit-to-consumption for the future API.
    return std::async(
        std::launch::deferred,
        [future = std::move(inner), info, submitted]() mutable {
            Result result = future.get();
            ExecStats stats = result.execStats();
            stats.prepareCacheHit = info.cacheHit;
            stats.prepareSeconds = info.seconds;
            result.setExecStats(stats);
            if (obs::metricsEnabled()) {
                const auto now = obs::Tracer::Clock::now();
                obs::observe(
                    queueMetrics().submitToCompleteNs,
                    static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::nanoseconds>(now - submitted)
                            .count()));
            }
            return result;
        });
}

void
JobQueue::submit(const JobSpec &spec, Completion on_complete)
{
    if (!on_complete)
        throw ValueError("submit requires a completion callback");
    // Fixed-budget specs keep the one-block submitAsync path; an
    // enabled stopping rule (or checkpoint/resume state) routes
    // through the wave engine.
    if (needsAdaptive(spec)) {
        submit(spec, nullptr, std::move(on_complete));
        return;
    }
    PrepInfo info;
    Job job = makeJob(spec, &info);
    submitTracked(std::move(job), nullptr,
                  stamped(std::move(on_complete), info),
                  /*adaptive=*/false);
}

void
JobQueue::submit(const JobSpec &spec, Progress on_progress,
                 Completion on_complete)
{
    if (!on_complete)
        throw ValueError("submit requires a completion callback");
    // Always the wave path: progress streams once per wave even for
    // fixed-budget specs (disabled rule = every wave runs).
    PrepInfo info;
    Job job = makeJob(spec, &info);
    submitTracked(std::move(job), std::move(on_progress),
                  stamped(std::move(on_complete), info),
                  /*adaptive=*/true);
}

void
JobQueue::submitTracked(Job job, Progress on_progress,
                        Completion on_complete, bool adaptive)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++outstanding_;
    }
    auto finish_one = [this]() {
        // Notify under the lock: once waitIdle() observes
        // outstanding_ == 0 the queue may be destroyed, so this
        // thread must be done touching members before the waiter can
        // acquire the mutex and return.
        std::lock_guard<std::mutex> lock(mutex_);
        --outstanding_;
        idle_.notify_all();
    };
    Completion tracked = [callback = std::move(on_complete),
                          finish_one](Result result,
                                      std::exception_ptr error) {
        try {
            callback(std::move(result), error);
        } catch (...) {
            finish_one();
            throw;
        }
        finish_one();
    };
    try {
        if (adaptive)
            engine_.submitAdaptive(std::move(job),
                                   std::move(on_progress),
                                   std::move(tracked));
        else
            engine_.submitAsync(std::move(job), std::move(tracked));
    } catch (...) {
        // Synchronous dispatch failure: the callback will never run.
        finish_one();
        throw;
    }
}

void
JobQueue::waitIdle()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this]() { return outstanding_ == 0; });
}

std::vector<Result>
JobQueue::runAll(const std::vector<JobSpec> &specs)
{
    std::vector<std::future<Result>> futures;
    futures.reserve(specs.size());
    for (const JobSpec &spec : specs)
        futures.push_back(submit(spec));
    std::vector<Result> results;
    results.reserve(futures.size());
    for (std::future<Result> &future : futures)
        results.push_back(future.get());
    return results;
}

std::shared_ptr<const InstrumentedCircuit>
JobQueue::instrumented(const JobSpec &spec)
{
    return prepare(spec, /*count_stats=*/false)->instrumented;
}

std::shared_ptr<const compile::analysis::CircuitAnalysis>
JobQueue::analysis(const JobSpec &spec)
{
    return prepare(spec, /*count_stats=*/false)->analysis;
}

std::size_t
JobQueue::cacheHits() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return hits_;
}

std::size_t
JobQueue::cacheMisses() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return misses_;
}

std::shared_ptr<kernels::PlanCache>
JobQueue::artifactCache() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return artifacts_;
}

std::size_t
JobQueue::samplingCacheHits() const
{
    return artifactCache()->stats().hits;
}

std::size_t
JobQueue::samplingCacheMisses() const
{
    return artifactCache()->stats().misses;
}

void
JobQueue::clearCache()
{
    std::lock_guard<std::mutex> lock(mutex_);
    cache_.clear();
    // In-flight jobs hold their own reference; swapping the artifact
    // cache leaves them untouched and starts future jobs cold.
    artifacts_ = std::make_shared<kernels::PlanCache>();
    hits_ = 0;
    misses_ = 0;
}

} // namespace runtime
} // namespace qra
