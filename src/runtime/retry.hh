/**
 * @file
 * RetryPolicy: seeded-jitter exponential backoff for transient shard
 * failures.
 *
 * A shard whose backend run fails with a *transient* error (see
 * common/error.hh: TransientSimulationError, std::bad_alloc) is
 * re-run up to maxAttempts times with its ORIGINAL RNG stream — a
 * retried shard reuses the shard seed the deterministic plan gave it,
 * so a job that recovers from transient faults produces counts
 * bit-identical to a fault-free run. Permanent errors are never
 * retried.
 *
 * Backoff between attempts is exponential with seeded jitter: the
 * jitter factor is drawn from an RNG stream split off the shard seed
 * and the attempt number, so even the sleep schedule is reproducible
 * run to run.
 */

#ifndef QRA_RUNTIME_RETRY_HH
#define QRA_RUNTIME_RETRY_HH

#include <cstddef>
#include <cstdint>

namespace qra {
namespace runtime {

/** How (and whether) to re-run transiently failed shards. */
struct RetryPolicy
{
    /**
     * Total attempts per shard including the first. 1 = no retry
     * (the default): a transient failure propagates like a permanent
     * one.
     */
    std::size_t maxAttempts = 1;

    /**
     * Backoff before retry attempt k (k = 1 for the first retry):
     * baseBackoffMs * 2^(k-1), scaled by the jitter factor.
     */
    double baseBackoffMs = 1.0;

    /**
     * Jitter: the backoff is multiplied by a seeded uniform draw from
     * [1 - jitterFrac, 1 + jitterFrac]. 0 disables jitter. Must be in
     * [0, 1].
     */
    double jitterFrac = 0.25;

    bool enabled() const { return maxAttempts > 1; }
};

/**
 * The backoff (milliseconds) before retry attempt @p attempt (>= 1)
 * of a shard seeded @p shardSeed: exponential in the attempt, jitter
 * drawn from a dedicated RNG stream split off (shardSeed, attempt) —
 * deterministic for a fixed plan.
 */
double retryBackoffMs(const RetryPolicy &policy, std::size_t attempt,
                      std::uint64_t shardSeed);

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_RETRY_HH
