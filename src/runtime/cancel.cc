#include "runtime/cancel.hh"

namespace qra {
namespace runtime {

const char *
cancelReasonName(CancelReason reason)
{
    switch (reason) {
      case CancelReason::User:
        return "user";
      case CancelReason::Deadline:
        return "deadline";
      case CancelReason::None:
        break;
    }
    return "none";
}

void
CancelToken::cancel(CancelReason reason) const
{
    if (reason == CancelReason::None)
        return;
    int expected = static_cast<int>(CancelReason::None);
    state_->reason.compare_exchange_strong(
        expected, static_cast<int>(reason), std::memory_order_acq_rel,
        std::memory_order_acquire);
}

void
CancelToken::armDeadline(Clock::time_point deadline) const
{
    state_->deadlineNs.store(static_cast<std::int64_t>(
                                 deadline.time_since_epoch().count()),
                             std::memory_order_relaxed);
    // Release pairs with poll()'s acquire: a poller that sees the
    // flag also sees the expiry value.
    state_->hasDeadline.store(true, std::memory_order_release);
}

bool
CancelToken::poll() const
{
    if (cancelled())
        return true;
    if (!state_->hasDeadline.load(std::memory_order_acquire))
        return false;
    const std::int64_t now = static_cast<std::int64_t>(
        Clock::now().time_since_epoch().count());
    if (now < state_->deadlineNs.load(std::memory_order_relaxed))
        return false;
    cancel(CancelReason::Deadline);
    return true;
}

} // namespace runtime
} // namespace qra
