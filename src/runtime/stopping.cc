#include "runtime/stopping.hh"

#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"
#include "stats/distance.hh"

namespace qra {
namespace runtime {

std::string
StoppingStatus::str() const
{
    std::ostringstream os;
    os << "wave " << wave << ": " << shotsDone << "/" << shotsRequested
       << " shots, estimate " << formatPercent(estimate) << " +/- "
       << formatPercent(halfWidth)
       << (converged ? " (converged)" : "")
       << (cancelled ? " (cancelled)" : "");
    return os.str();
}

StoppingStatus
evaluateStopping(const StoppingRule &rule, const Result &partial,
                 const InstrumentedCircuit *instrumented)
{
    // Count matching shots straight off the raw counts; the predicates
    // are the same ones AssertionReport::analyze applies, so the
    // estimate equals the report's rate over these shots.
    std::size_t matched = 0;
    switch (rule.statistic) {
      case StoppingRule::Statistic::AnyError:
        if (instrumented == nullptr)
            throw ValueError("any-error stopping rule needs an "
                             "instrumented circuit (assertions)");
        for (const auto &[reg, n] : partial.rawCounts())
            if (!instrumented->passed(reg))
                matched += n;
        break;
      case StoppingRule::Statistic::CheckError:
        if (instrumented == nullptr)
            throw ValueError("check-error stopping rule needs an "
                             "instrumented circuit (assertions)");
        if (rule.checkIndex >= instrumented->checks().size())
            throw ValueError(
                "stopping rule check index " +
                std::to_string(rule.checkIndex) +
                " out of range (circuit has " +
                std::to_string(instrumented->checks().size()) +
                " checks)");
        for (const auto &[reg, n] : partial.rawCounts())
            if (!instrumented->checkPassed(rule.checkIndex, reg))
                matched += n;
        break;
      case StoppingRule::Statistic::OutcomeProbability:
      {
        if (rule.outcome.empty())
            throw ValueError("outcome-probability stopping rule needs "
                             "a non-empty outcome bitstring");
        const std::uint64_t target = fromBitstring(rule.outcome);
        for (const auto &[reg, n] : partial.rawCounts()) {
            const std::uint64_t key =
                instrumented != nullptr ? instrumented->payloadBits(reg)
                                        : reg;
            if (key == target)
                matched += n;
        }
        break;
      }
    }

    StoppingStatus status;
    status.shotsDone = partial.shots();
    if (status.shotsDone > 0)
        status.estimate = static_cast<double>(matched) /
                          static_cast<double>(status.shotsDone);
    status.halfWidth =
        stats::wilsonHalfWidth(status.estimate, status.shotsDone);
    status.converged = rule.enabled() &&
                       status.halfWidth <= rule.targetHalfWidth &&
                       status.shotsDone >= rule.minShots;
    return status;
}

} // namespace runtime
} // namespace qra
