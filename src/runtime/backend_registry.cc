#include "runtime/backend_registry.hh"

#include "common/error.hh"
#include "common/strings.hh"
#include "runtime/builtin_backends.hh"

namespace qra {
namespace runtime {

void
BackendRegistry::registerBackend(const std::string &name,
                                 Factory factory)
{
    std::lock_guard<std::mutex> lock(mutex_);
    factories_[name] = std::move(factory);
    instances_.erase(name);
}

bool
BackendRegistry::contains(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return factories_.count(name) > 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &[name, factory] : factories_)
        out.push_back(name);
    return out;
}

BackendPtr
BackendRegistry::create(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto cached = instances_.find(name);
        cached != instances_.end())
        return cached->second;
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        std::vector<std::string> known;
        for (const auto &[key, factory] : factories_)
            known.push_back(key);
        throw ValueError("unknown backend '" + name +
                         "' (registered: " + join(known, ", ") + ")");
    }
    BackendPtr backend = it->second();
    instances_[name] = backend;
    return backend;
}

BackendPtr
BackendRegistry::resolveAuto(const Circuit &circuit,
                             const NoiseModel *noise) const
{
    // Preference order per job class; each candidate still has to
    // pass its own supports() check before it is chosen.
    std::vector<std::string> preference;
    if (noise != nullptr)
        preference = {"density", "trajectory"};
    else
        preference = {"stabilizer_if_large", "statevector",
                      "stabilizer", "trajectory"};

    std::vector<std::string> reasons;
    for (const std::string &entry : preference) {
        std::string name = entry;
        if (entry == "stabilizer_if_large") {
            // Small Clifford circuits run faster on the dense
            // simulator; past state-vector comfort the tableau wins.
            if (circuit.numQubits() <= 16)
                continue;
            name = "stabilizer";
        }
        if (!contains(name))
            continue;
        const BackendPtr backend = create(name);
        const std::string reason =
            backend->rejectReason(circuit, noise);
        if (reason.empty())
            return backend;
        reasons.push_back(reason);
    }
    throw SimulationError(
        "no registered backend supports this circuit: " +
        join(reasons, "; "));
}

BackendPtr
BackendRegistry::resolve(const std::string &name, const Circuit &circuit,
                         const NoiseModel *noise) const
{
    if (name == "auto" || name.empty())
        return resolveAuto(circuit, noise);
    return create(name);
}

BackendRegistry &
BackendRegistry::global()
{
    static BackendRegistry *registry = [] {
        auto *r = new BackendRegistry();
        registerBuiltinBackends(*r);
        return r;
    }();
    return *registry;
}

} // namespace runtime
} // namespace qra
