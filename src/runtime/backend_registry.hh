/**
 * @file
 * Name -> factory registry of execution backends.
 *
 * The process-wide registry (BackendRegistry::global()) comes
 * pre-populated with the four builtin simulator backends; embedders
 * may register additional backends (hardware adapters, remote
 * executors) under new names. Backend instances returned by create()
 * are cached per registry, which is safe because backends are
 * stateless (see Backend).
 */

#ifndef QRA_RUNTIME_BACKEND_REGISTRY_HH
#define QRA_RUNTIME_BACKEND_REGISTRY_HH

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/backend.hh"

namespace qra {
namespace runtime {

/** Thread-safe backend name -> factory map with auto-selection. */
class BackendRegistry
{
  public:
    using Factory = std::function<BackendPtr()>;

    /** An empty registry (global() is the pre-populated one). */
    BackendRegistry() = default;

    BackendRegistry(const BackendRegistry &) = delete;
    BackendRegistry &operator=(const BackendRegistry &) = delete;

    /**
     * Register @p factory under @p name, replacing any previous
     * registration (and dropping its cached instance).
     */
    void registerBackend(const std::string &name, Factory factory);

    bool contains(const std::string &name) const;

    /** Registered names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Instantiate (or return the cached instance of) backend @p name.
     * @throws ValueError on unknown names, listing what is available.
     */
    BackendPtr create(const std::string &name) const;

    /**
     * Pick the best backend for @p circuit: the exact density backend
     * for noisy jobs that fit it, the trajectory backend for other
     * noisy jobs, the stabilizer backend for Clifford circuits past
     * state-vector reach, and the state-vector backend otherwise.
     * @throws SimulationError when no registered backend supports the
     *         circuit.
     */
    BackendPtr resolveAuto(const Circuit &circuit,
                           const NoiseModel *noise = nullptr) const;

    /**
     * create(name), with "auto" routed through resolveAuto(). This is
     * the one call sites should use for user-supplied names.
     */
    BackendPtr resolve(const std::string &name, const Circuit &circuit,
                       const NoiseModel *noise = nullptr) const;

    /** The process-wide registry, builtin backends pre-registered. */
    static BackendRegistry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, Factory> factories_;
    mutable std::map<std::string, BackendPtr> instances_;
};

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_BACKEND_REGISTRY_HH
