#include "runtime/backend.hh"

#include <set>

#include "stabilizer/stabilizer_simulator.hh"

namespace qra {
namespace runtime {

std::string
Backend::rejectReason(const Circuit &circuit,
                      const NoiseModel *noise) const
{
    const BackendCapabilities &caps = capabilities();
    if (circuit.numQubits() > caps.maxQubits)
        return name() + " is limited to " +
               std::to_string(caps.maxQubits) + " qubits (circuit has " +
               std::to_string(circuit.numQubits()) + ")";
    if (noise != nullptr && !caps.supportsNoise)
        return name() + " does not support noise models";
    if (caps.cliffordOnly && !StabilizerSimulator::supports(circuit))
        return name() + " executes Clifford circuits only";
    if (!caps.supportsMidCircuitMeasurement &&
        !measurementsTerminalPerQubit(circuit))
        return name() + " requires measurements to be terminal per "
                        "qubit (no reuse after measure, no reset)";
    return {};
}

bool
measurementsTerminalPerQubit(const Circuit &circuit)
{
    std::set<Qubit> measured;
    for (const Operation &op : circuit.ops()) {
        if (op.kind == OpKind::Barrier)
            continue;
        for (const Qubit q : op.qubits)
            if (measured.count(q))
                return false;
        if (op.kind == OpKind::Measure)
            measured.insert(op.qubits[0]);
    }
    return true;
}

} // namespace runtime
} // namespace qra
