/**
 * @file
 * The Backend interface: one uniform, thread-safe entry point over
 * every simulator class in the library.
 *
 * A Backend is a stateless description of *how* to execute a circuit;
 * each run() call constructs a fresh simulator seeded for that call,
 * so a single Backend instance may be driven from many threads at
 * once. Capability flags let the registry and execution engine route
 * jobs (noise support, mid-circuit measurement, qubit ceilings)
 * without hard-coding per-simulator knowledge.
 */

#ifndef QRA_RUNTIME_BACKEND_HH
#define QRA_RUNTIME_BACKEND_HH

#include <cstdint>
#include <memory>
#include <string>

#include "circuit/circuit.hh"
#include "noise/noise_model.hh"
#include "sim/result.hh"

namespace qra {
namespace runtime {

/** What a backend can and cannot execute. */
struct BackendCapabilities
{
    /** Accepts a NoiseModel (density, trajectory). */
    bool supportsNoise = false;

    /**
     * Allows operating on a qubit after it was measured (reset,
     * ancilla reuse). The density backend models measurement as
     * terminal dephasing and must reject such circuits.
     */
    bool supportsMidCircuitMeasurement = false;

    /** Attaches the exact outcome distribution to its Result. */
    bool exactDistribution = false;

    /** Executes Clifford circuits only. */
    bool cliffordOnly = false;

    /** Largest register the backend will accept. */
    std::size_t maxQubits = 0;

    /**
     * Whether a shot budget may be split across parallel shards.
     * Exact backends re-derive the full final state per run() call,
     * so sharding them multiplies the dominant cost; the engine runs
     * them as a single shard instead.
     */
    bool shardable = true;
};

/** Uniform execution interface over one simulator class. */
class Backend
{
  public:
    virtual ~Backend() = default;

    /** Registry name, e.g. "statevector". */
    virtual const std::string &name() const = 0;

    virtual const BackendCapabilities &capabilities() const = 0;

    /**
     * Why this backend cannot run @p circuit (with @p noise attached),
     * or the empty string when it can. The default implementation
     * checks the capability flags; backends add checks of their own.
     */
    virtual std::string rejectReason(const Circuit &circuit,
                                     const NoiseModel *noise) const;

    /** True when rejectReason() is empty. */
    bool supports(const Circuit &circuit,
                  const NoiseModel *noise = nullptr) const
    {
        return rejectReason(circuit, noise).empty();
    }

    /**
     * Execute @p circuit for @p shots shots.
     *
     * Stateless and thread-safe: a fresh simulator is constructed and
     * seeded with @p seed for this call alone.
     *
     * @param noise Optional noise model; must be null for backends
     *        without noise support (enforced by rejectReason).
     * @throws SimulationError when the circuit is unsupported.
     */
    virtual Result run(const Circuit &circuit, std::size_t shots,
                       std::uint64_t seed,
                       const NoiseModel *noise = nullptr) const = 0;
};

using BackendPtr = std::shared_ptr<const Backend>;

/**
 * True when no qubit is operated on (gated, reset, or re-measured)
 * after being measured — the restriction the density backend imposes.
 */
bool measurementsTerminalPerQubit(const Circuit &circuit);

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_BACKEND_HH
