/**
 * @file
 * Deterministic fault injection for the runtime's recovery paths.
 *
 * A FaultPlan makes backends throw (transient or permanent), stall,
 * or fail allocation at chosen shard/wave indices — or at a seeded
 * per-shard rate — so cancellation, deadlines, retry/backoff, and
 * checkpoint/resume are testable and CI-exercisable rather than
 * theoretical. Injection is fully deterministic: fixed sites fire at
 * fixed (index, attempt) pairs, and rate sites derive their fire/no-
 * fire decision from the plan seed and the (shard, attempt) pair, so
 * the same plan faults the same shards every run.
 *
 * Plans are threaded through Job/JobSpec (`faults`) or installed
 * process-wide via the QRA_FAULTS environment variable (and
 * `qra_run --inject-fault=SPEC`). Spec grammar — comma-separated
 * elements:
 *
 *   shard:I:KIND[:N|:perm]   fault shard index I (N = first N
 *                            attempts, default 1; perm = permanent,
 *                            every attempt)
 *   wave:I:KIND              fault the epilogue of adaptive wave I
 *   prepare:KIND[:N|:perm]   fault the JobQueue prepare pipeline
 *   rate:P:KIND              fault any shard with probability P per
 *                            (shard, attempt), seeded
 *   seed:S                   seed for rate sites (default 0)
 *   stall-ms:T               stall duration for KIND=stall
 *                            (default 25)
 *
 * KIND is one of: throw (TransientSimulationError; SimulationError
 * when :perm), stall (sleep stall-ms, then run normally), badalloc
 * (std::bad_alloc — classified transient by isTransient()).
 */

#ifndef QRA_RUNTIME_FAULT_HH
#define QRA_RUNTIME_FAULT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace qra {
namespace runtime {

/** What an injected fault does when it fires. */
enum class FaultKind
{
    /** Throw TransientSimulationError (SimulationError when
        permanent). */
    Throw,
    /** Sleep FaultPlan::stallMs, then continue normally. */
    Stall,
    /** Throw std::bad_alloc. */
    BadAlloc,
};

/** Stable lowercase name: "throw", "stall", "badalloc". */
const char *faultKindName(FaultKind kind);

/** One injection site of a FaultPlan. */
struct FaultSite
{
    /** Which runtime hook the site arms. */
    enum class Scope
    {
        /** A shard run (index = global shard index of the plan). */
        Shard,
        /** An adaptive wave epilogue (index = 0-based wave index). */
        Wave,
        /** The JobQueue prepare pipeline (index ignored; attempts
            count prepare builds). */
        Prepare,
    };

    Scope scope = Scope::Shard;
    std::size_t index = 0;
    FaultKind kind = FaultKind::Throw;
    /** Fire on the first `times` attempts (so a retrying job recovers
        once the faulty attempts are spent). */
    std::size_t times = 1;
    /** Permanent: fire on every attempt and throw the non-transient
        error class. */
    bool permanent = false;
};

/** Stable scope name: "shard", "wave", "prepare". */
const char *faultScopeName(FaultSite::Scope scope);

/** A deterministic set of injection sites (see file comment). */
struct FaultPlan
{
    std::vector<FaultSite> sites;

    /** Seed of the rate sites' fire/no-fire draws. */
    std::uint64_t seed = 0;

    /** Per-(shard, attempt) fault probability; 0 = no rate site. */
    double shardFaultRate = 0.0;

    /** What rate-site faults do when they fire. */
    FaultKind rateKind = FaultKind::Throw;

    /** Stall duration for FaultKind::Stall sites. */
    std::size_t stallMs = 25;

    bool empty() const
    {
        return sites.empty() && shardFaultRate <= 0.0;
    }

    /**
     * Whether a fault fires at (@p scope, @p index, @p attempt), and
     * what it does. Deterministic: fixed sites match on index and
     * attempt < times (or always when permanent), rate sites on a
     * seeded draw.
     *
     * @param kind_out Set to the firing fault's kind.
     * @param permanent_out Set to the firing fault's permanence.
     * @return True when a fault fires.
     */
    bool shouldFire(FaultSite::Scope scope, std::size_t index,
                    std::size_t attempt, FaultKind *kind_out,
                    bool *permanent_out) const;

    /** One-line summary in the spec grammar. */
    std::string str() const;

    /** Parse the spec grammar. @throws ValueError on malformed text. */
    static FaultPlan parse(const std::string &text);
};

/**
 * The process-wide plan parsed once from QRA_FAULTS, or null when the
 * variable is unset/empty. Jobs without their own plan fall back to
 * it. @throws ValueError (on first call) when the variable is set but
 * malformed.
 */
const FaultPlan *processFaultPlan();

/**
 * Fire the matching fault of @p plan at (@p scope, @p index,
 * @p attempt), if any: throw for Throw/BadAlloc sites, sleep for
 * Stall sites, no-op when @p plan is null or nothing matches. Every
 * firing increments the `engine.faults_injected` counter.
 */
void maybeInjectFault(const FaultPlan *plan, FaultSite::Scope scope,
                      std::size_t index, std::size_t attempt);

} // namespace runtime
} // namespace qra

#endif // QRA_RUNTIME_FAULT_HH
