#include "runtime/retry.hh"

#include <algorithm>

#include "common/rng.hh"

namespace qra {
namespace runtime {

namespace {

/** Stream tag separating backoff draws from every other splitSeed
    consumer of the shard seed. */
constexpr std::uint64_t kBackoffStream = 0xB0FFull;

} // namespace

double
retryBackoffMs(const RetryPolicy &policy, std::size_t attempt,
               std::uint64_t shardSeed)
{
    if (attempt == 0 || policy.baseBackoffMs <= 0.0)
        return 0.0;
    // Exponent capped so pathological attempt counts cannot overflow
    // the double: 2^40 ms is already ~35 years.
    const double exponent =
        static_cast<double>(std::min<std::size_t>(attempt - 1, 40));
    double delay_ms = policy.baseBackoffMs;
    for (double e = 0; e < exponent; e += 1.0)
        delay_ms *= 2.0;
    const double jitter = std::clamp(policy.jitterFrac, 0.0, 1.0);
    if (jitter > 0.0) {
        Rng rng(splitSeed(splitSeed(shardSeed, kBackoffStream),
                          attempt));
        delay_ms *= 1.0 + jitter * (2.0 * rng.uniform() - 1.0);
    }
    return delay_ms;
}

} // namespace runtime
} // namespace qra
