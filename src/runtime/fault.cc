#include "runtime/fault.hh"

#include <chrono>
#include <cstdlib>
#include <new>
#include <sstream>
#include <thread>

#include "common/error.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"

namespace qra {
namespace runtime {

namespace {

/** Stream tag separating rate-site draws from every other splitSeed
    consumer of the plan seed. */
constexpr std::uint64_t kRateStream = 0xFA17ull;

/** Registered-once handle for the injection counter. */
const obs::CounterHandle &
faultsInjectedCounter()
{
    static const obs::CounterHandle handle =
        obs::MetricsRegistry::global().counter(
            "engine.faults_injected");
    return handle;
}

FaultKind
parseKind(const std::string &token, const std::string &element)
{
    if (token == "throw")
        return FaultKind::Throw;
    if (token == "stall")
        return FaultKind::Stall;
    if (token == "badalloc")
        return FaultKind::BadAlloc;
    throw ValueError("fault spec '" + element +
                     "': unknown kind '" + token +
                     "' (expected throw|stall|badalloc)");
}

std::size_t
parseCount(const std::string &token, const std::string &element)
{
    std::size_t pos = 0;
    unsigned long long value = 0;
    try {
        value = std::stoull(token, &pos);
    } catch (const std::exception &) {
        pos = 0;
    }
    if (pos != token.size())
        throw ValueError("fault spec '" + element +
                         "': expected a number, got '" + token + "'");
    return static_cast<std::size_t>(value);
}

/** Apply the optional [:N|:perm] suffix of a site element. */
void
parseRepeat(const std::vector<std::string> &fields, std::size_t first,
            const std::string &element, FaultSite *site)
{
    if (fields.size() <= first)
        return;
    if (fields.size() > first + 1)
        throw ValueError("fault spec '" + element +
                         "': too many fields");
    if (fields[first] == "perm") {
        site->permanent = true;
        return;
    }
    site->times = parseCount(fields[first], element);
    if (site->times == 0)
        throw ValueError("fault spec '" + element +
                         "': repeat count must be >= 1");
}

std::vector<std::string>
splitOn(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::string piece;
    std::istringstream stream(text);
    while (std::getline(stream, piece, sep))
        out.push_back(piece);
    return out;
}

} // namespace

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::Throw:
        return "throw";
      case FaultKind::Stall:
        return "stall";
      case FaultKind::BadAlloc:
        return "badalloc";
    }
    return "?";
}

const char *
faultScopeName(FaultSite::Scope scope)
{
    switch (scope) {
      case FaultSite::Scope::Shard:
        return "shard";
      case FaultSite::Scope::Wave:
        return "wave";
      case FaultSite::Scope::Prepare:
        return "prepare";
    }
    return "?";
}

bool
FaultPlan::shouldFire(FaultSite::Scope scope, std::size_t index,
                      std::size_t attempt, FaultKind *kind_out,
                      bool *permanent_out) const
{
    for (const FaultSite &site : sites) {
        if (site.scope != scope)
            continue;
        if (scope != FaultSite::Scope::Prepare && site.index != index)
            continue;
        if (!site.permanent && attempt >= site.times)
            continue;
        *kind_out = site.kind;
        *permanent_out = site.permanent;
        return true;
    }
    if (scope == FaultSite::Scope::Shard && shardFaultRate > 0.0) {
        Rng rng(splitSeed(splitSeed(splitSeed(seed, kRateStream),
                                    index),
                          attempt));
        if (rng.uniform() < shardFaultRate) {
            *kind_out = rateKind;
            *permanent_out = false;
            return true;
        }
    }
    return false;
}

std::string
FaultPlan::str() const
{
    std::ostringstream out;
    bool first = true;
    auto sep = [&]() {
        if (!first)
            out << ",";
        first = false;
    };
    for (const FaultSite &site : sites) {
        sep();
        out << faultScopeName(site.scope);
        if (site.scope != FaultSite::Scope::Prepare)
            out << ":" << site.index;
        out << ":" << faultKindName(site.kind);
        if (site.permanent)
            out << ":perm";
        else if (site.times != 1)
            out << ":" << site.times;
    }
    if (shardFaultRate > 0.0) {
        sep();
        out << "rate:" << shardFaultRate << ":"
            << faultKindName(rateKind);
    }
    if (seed != 0) {
        sep();
        out << "seed:" << seed;
    }
    if (stallMs != 25) {
        sep();
        out << "stall-ms:" << stallMs;
    }
    if (first)
        out << "(empty)";
    return out.str();
}

FaultPlan
FaultPlan::parse(const std::string &text)
{
    FaultPlan plan;
    for (const std::string &element : splitOn(text, ',')) {
        if (element.empty())
            continue;
        const std::vector<std::string> fields = splitOn(element, ':');
        const std::string &head = fields[0];
        if (head == "shard" || head == "wave") {
            if (fields.size() < 3)
                throw ValueError(
                    "fault spec '" + element +
                    "': expected " + head + ":INDEX:KIND");
            FaultSite site;
            site.scope = head == "shard" ? FaultSite::Scope::Shard
                                         : FaultSite::Scope::Wave;
            site.index = parseCount(fields[1], element);
            site.kind = parseKind(fields[2], element);
            parseRepeat(fields, 3, element, &site);
            plan.sites.push_back(site);
        } else if (head == "prepare") {
            if (fields.size() < 2)
                throw ValueError("fault spec '" + element +
                                 "': expected prepare:KIND");
            FaultSite site;
            site.scope = FaultSite::Scope::Prepare;
            site.kind = parseKind(fields[1], element);
            parseRepeat(fields, 2, element, &site);
            plan.sites.push_back(site);
        } else if (head == "rate") {
            if (fields.size() != 3)
                throw ValueError("fault spec '" + element +
                                 "': expected rate:P:KIND");
            std::size_t pos = 0;
            double rate = 0.0;
            try {
                rate = std::stod(fields[1], &pos);
            } catch (const std::exception &) {
                pos = 0;
            }
            if (pos != fields[1].size() || rate < 0.0 || rate > 1.0)
                throw ValueError("fault spec '" + element +
                                 "': rate must be in [0, 1]");
            plan.shardFaultRate = rate;
            plan.rateKind = parseKind(fields[2], element);
        } else if (head == "seed") {
            if (fields.size() != 2)
                throw ValueError("fault spec '" + element +
                                 "': expected seed:N");
            plan.seed = parseCount(fields[1], element);
        } else if (head == "stall-ms") {
            if (fields.size() != 2)
                throw ValueError("fault spec '" + element +
                                 "': expected stall-ms:N");
            plan.stallMs = parseCount(fields[1], element);
        } else {
            throw ValueError(
                "fault spec '" + element +
                "': unknown element (expected shard|wave|prepare|"
                "rate|seed|stall-ms)");
        }
    }
    return plan;
}

const FaultPlan *
processFaultPlan()
{
    // Parsed once; a malformed QRA_FAULTS throws out of the first
    // caller (and every later one, via rethrow from the static init).
    static const FaultPlan *const plan = []() -> const FaultPlan * {
        const char *spec = std::getenv("QRA_FAULTS");
        if (spec == nullptr || *spec == '\0')
            return nullptr;
        static const FaultPlan parsed = FaultPlan::parse(spec);
        return parsed.empty() ? nullptr : &parsed;
    }();
    return plan;
}

void
maybeInjectFault(const FaultPlan *plan, FaultSite::Scope scope,
                 std::size_t index, std::size_t attempt)
{
    if (plan == nullptr || plan->empty())
        return;
    FaultKind kind = FaultKind::Throw;
    bool permanent = false;
    if (!plan->shouldFire(scope, index, attempt, &kind, &permanent))
        return;
    obs::count(faultsInjectedCounter());
    switch (kind) {
      case FaultKind::Stall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan->stallMs));
        return;
      case FaultKind::BadAlloc:
        throw std::bad_alloc();
      case FaultKind::Throw:
        break;
    }
    std::ostringstream msg;
    msg << "injected fault: " << faultScopeName(scope);
    if (scope != FaultSite::Scope::Prepare)
        msg << " " << index;
    msg << " attempt " << attempt << " (throw)";
    if (permanent)
        throw SimulationError(msg.str());
    throw TransientSimulationError(msg.str());
}

} // namespace runtime
} // namespace qra
