/**
 * @file
 * Umbrella header: the full public API of the QRA library.
 *
 * Include this from applications; library-internal code includes the
 * specific module headers instead.
 */

#ifndef QRA_QRA_HH
#define QRA_QRA_HH

#include "assertions/amplitude_estimator.hh"
#include "assertions/assertion.hh"
#include "assertions/classical_assertion.hh"
#include "assertions/directives.hh"
#include "assertions/entanglement_assertion.hh"
#include "assertions/injector.hh"
#include "assertions/report.hh"
#include "assertions/statistical_assertion.hh"
#include "assertions/superposition_assertion.hh"
#include "circuit/circuit.hh"
#include "circuit/drawer.hh"
#include "circuit/qasm.hh"
#include "circuit/schedule.hh"
#include "common/error.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/strings.hh"
#include "library/algorithms.hh"
#include "math/gates.hh"
#include "math/linalg.hh"
#include "math/matrix.hh"
#include "math/pauli.hh"
#include "math/types.hh"
#include "noise/channels.hh"
#include "noise/device_model.hh"
#include "noise/kraus.hh"
#include "noise/noise_model.hh"
#include "noise/readout_error.hh"
#include "runtime/backend.hh"
#include "runtime/backend_registry.hh"
#include "runtime/builtin_backends.hh"
#include "runtime/execution_engine.hh"
#include "runtime/job_queue.hh"
#include "runtime/thread_pool.hh"
#include "sim/density_matrix.hh"
#include "sim/density_simulator.hh"
#include "sim/result.hh"
#include "sim/state_vector.hh"
#include "sim/statevector_simulator.hh"
#include "sim/trajectory_simulator.hh"
#include "stabilizer/stabilizer_simulator.hh"
#include "stabilizer/stabilizer_state.hh"
#include "stats/chi_square.hh"
#include "stats/distance.hh"
#include "stats/error_rate.hh"
#include "stats/histogram.hh"
#include "transpile/coupling_map.hh"
#include "transpile/decomposer.hh"
#include "transpile/direction_fixer.hh"
#include "transpile/layout.hh"
#include "transpile/optimizer.hh"
#include "transpile/router.hh"
#include "transpile/transpiler.hh"

#endif // QRA_QRA_HH
