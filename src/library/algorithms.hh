/**
 * @file
 * Reusable circuit factories for the textbook algorithms the paper's
 * debugging scenarios revolve around. Each factory optionally plants
 * a documented bug so examples/tests/benches can exercise assertion-
 * based debugging on realistic failure modes.
 */

#ifndef QRA_LIBRARY_ALGORITHMS_HH
#define QRA_LIBRARY_ALGORITHMS_HH

#include <cstdint>

#include "circuit/circuit.hh"

namespace qra {
namespace library {

/** The four Bell states. */
enum class BellKind
{
    PhiPlus,  ///< (|00> + |11>)/sqrt2
    PhiMinus, ///< (|00> - |11>)/sqrt2
    PsiPlus,  ///< (|01> + |10>)/sqrt2
    PsiMinus, ///< (|01> - |10>)/sqrt2
};

/** Bell pair on qubits 0 and 1 (no measurements, no clbits). */
Circuit bellPair(BellKind kind = BellKind::PhiPlus);

/** GHZ state over @p n qubits (no measurements). */
Circuit ghzState(std::size_t n);

/**
 * W state over @p n qubits (one excitation, uniformly shared) via
 * the cascaded-rotation construction. Not Clifford.
 */
Circuit wState(std::size_t n);

/** Quantum Fourier transform over @p n qubits (with final swaps). */
Circuit qft(std::size_t n);

/** Inverse QFT. */
Circuit inverseQft(std::size_t n);

/** Planted bugs for groverSearch2(). */
enum class GroverBug
{
    None,
    MissingPreambleH, ///< H on qubit 1 omitted (paper-style bug)
    WrongOracle,      ///< oracle marks |10> instead of |11>
};

/**
 * One-iteration 2-qubit Grover search for the marked state |11>
 * (exact for n = 2), measured into clbits 0-1.
 */
Circuit groverSearch2(GroverBug bug = GroverBug::None);

/**
 * Bernstein-Vazirani for @p secret over @p n input qubits, with the
 * oracle ancilla as qubit n; inputs measured into clbits 0..n-1.
 */
Circuit bernsteinVazirani(std::uint64_t secret, std::size_t n);

/**
 * Teleport RY(theta)|0> from qubit 0 to qubit 2, corrections in
 * coherent (deferred) form; measures all three qubits.
 */
Circuit teleportation(double theta);

} // namespace library
} // namespace qra

#endif // QRA_LIBRARY_ALGORITHMS_HH
