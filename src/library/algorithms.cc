#include "library/algorithms.hh"

#include <cmath>

#include "common/error.hh"

namespace qra {
namespace library {

Circuit
bellPair(BellKind kind)
{
    Circuit c(2, 0, "bell");
    c.h(0).cx(0, 1);
    switch (kind) {
      case BellKind::PhiPlus:
        break;
      case BellKind::PhiMinus:
        c.z(0);
        break;
      case BellKind::PsiPlus:
        c.x(1);
        break;
      case BellKind::PsiMinus:
        c.z(0).x(1);
        break;
    }
    return c;
}

Circuit
ghzState(std::size_t n)
{
    if (n < 2)
        throw ValueError("GHZ state needs >= 2 qubits");
    Circuit c(n, 0, "ghz" + std::to_string(n));
    c.h(0);
    for (Qubit q = 0; q + 1 < n; ++q)
        c.cx(q, q + 1);
    return c;
}

Circuit
wState(std::size_t n)
{
    if (n < 2)
        throw ValueError("W state needs >= 2 qubits");

    // Cascaded construction: distribute the single excitation with
    // controlled rotations. Start from |10...0> and, at step k,
    // split amplitude off qubit k onto qubit k+1 with a rotation of
    // angle theta_k = 2*acos(sqrt(1/(n-k))), controlled so that the
    // excitation moves exactly once.
    Circuit c(n, 0, "w" + std::to_string(n));
    c.x(0);
    for (std::size_t k = 0; k + 1 < n; ++k) {
        const double remaining = static_cast<double>(n - k);
        const double theta =
            2.0 * std::acos(std::sqrt(1.0 / remaining));
        // Controlled-RY(theta) from qubit k to qubit k+1, built from
        // two CNOTs and two half-angle RYs.
        const Qubit a = static_cast<Qubit>(k);
        const Qubit b = static_cast<Qubit>(k + 1);
        c.ry(theta / 2.0, b);
        c.cx(a, b);
        c.ry(-theta / 2.0, b);
        c.cx(a, b);
        // Move the excitation: if qubit k+1 took the excitation,
        // clear qubit k.
        c.cx(b, a);
    }
    return c;
}

Circuit
qft(std::size_t n)
{
    if (n < 1)
        throw ValueError("QFT needs >= 1 qubit");
    Circuit c(n, 0, "qft" + std::to_string(n));
    for (std::size_t target = n; target-- > 0;) {
        const Qubit t = static_cast<Qubit>(target);
        c.h(t);
        for (std::size_t k = 0; k < target; ++k) {
            const Qubit control = static_cast<Qubit>(k);
            const double angle =
                M_PI / static_cast<double>(std::size_t{1}
                                           << (target - k));
            // Controlled phase via two CNOTs and three phases.
            c.p(angle / 2.0, t);
            c.cx(control, t);
            c.p(-angle / 2.0, t);
            c.cx(control, t);
            c.p(angle / 2.0, control);
        }
    }
    for (Qubit q = 0; q < n / 2; ++q)
        c.swap(q, static_cast<Qubit>(n - 1 - q));
    return c;
}

Circuit
inverseQft(std::size_t n)
{
    Circuit inv = qft(n).inverse();
    inv.setName("iqft" + std::to_string(n));
    return inv;
}

Circuit
groverSearch2(GroverBug bug)
{
    Circuit c(2, 2, "grover2");
    c.h(0);
    if (bug != GroverBug::MissingPreambleH)
        c.h(1);

    // Oracle: phase-flip the marked state.
    if (bug == GroverBug::WrongOracle) {
        // Marks |10> (q1 = 1, q0 = 0) instead of |11>.
        c.x(0);
        c.cz(0, 1);
        c.x(0);
    } else {
        c.cz(0, 1);
    }

    // Diffusion.
    c.h(0).h(1).x(0).x(1).cz(0, 1).x(0).x(1).h(0).h(1);
    c.measureAll();
    return c;
}

Circuit
bernsteinVazirani(std::uint64_t secret, std::size_t n)
{
    if (n == 0 || n > 62)
        throw ValueError("Bernstein-Vazirani supports 1..62 input "
                         "qubits");
    if (n < 64 && (secret >> n) != 0)
        throw ValueError("secret has more bits than input qubits");

    Circuit c(n + 1, n, "bv");
    const Qubit oracle = static_cast<Qubit>(n);
    c.x(oracle).h(oracle);
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    for (Qubit q = 0; q < n; ++q)
        if ((secret >> q) & 1)
            c.cx(q, oracle);
    for (Qubit q = 0; q < n; ++q)
        c.h(q);
    for (Qubit q = 0; q < n; ++q)
        c.measure(q, q);
    return c;
}

Circuit
teleportation(double theta)
{
    Circuit c(3, 3, "teleport");
    c.ry(theta, 0);
    c.h(1).cx(1, 2);
    c.cx(0, 1).h(0);
    c.measure(0, 0).measure(1, 1);
    c.cx(1, 2).cz(0, 2);
    c.measure(2, 2);
    return c;
}

} // namespace library
} // namespace qra
