#include "stabilizer/stabilizer_simulator.hh"

#include "common/error.hh"

namespace qra {

StabilizerSimulator::StabilizerSimulator(std::uint64_t seed) : rng_(seed)
{
}

bool
StabilizerSimulator::supports(const Circuit &circuit)
{
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Measure:
          case OpKind::Reset:
          case OpKind::Barrier:
          case OpKind::PostSelect:
            continue;
          default:
            if (!StabilizerState::isCliffordOp(op.kind))
                return false;
        }
    }
    return true;
}

bool
StabilizerSimulator::runShot(const Circuit &circuit,
                             StabilizerState &state,
                             std::uint64_t &register_value)
{
    register_value = 0;
    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Measure:
          {
            const int outcome = state.measure(op.qubits[0], rng_);
            if (outcome)
                register_value |= std::uint64_t{1} << *op.clbit;
            else
                register_value &= ~(std::uint64_t{1} << *op.clbit);
            break;
          }
          case OpKind::Reset:
            state.resetQubit(op.qubits[0], rng_);
            break;
          case OpKind::Barrier:
            break;
          case OpKind::PostSelect:
          {
            // Conditioning semantics shared with the other
            // backends: survive with the branch probability.
            StabilizerState trial = state;
            const double p =
                trial.postSelect(op.qubits[0], op.postselectValue);
            if (p == 0.0 || rng_.uniform() >= p)
                return false;
            state = std::move(trial);
            break;
          }
          default:
            state.applyUnitary(op);
        }
    }
    return true;
}

Result
StabilizerSimulator::run(const Circuit &circuit, std::size_t shots)
{
    Result result(circuit.numClbits());
    std::size_t attempted = 0;
    std::size_t kept = 0;
    const std::size_t max_attempts = shots * 100 + 1000;

    while (kept < shots && attempted < max_attempts) {
        ++attempted;
        StabilizerState state(circuit.numQubits());
        std::uint64_t reg = 0;
        if (!runShot(circuit, state, reg))
            continue;
        result.record(reg);
        ++kept;
    }
    if (kept < shots)
        throw SimulationError("post-selection discarded nearly every "
                              "shot; circuit is inconsistent");
    result.setRetainedFraction(static_cast<double>(kept) /
                               static_cast<double>(attempted));
    return result;
}

StabilizerState
StabilizerSimulator::evolveOne(const Circuit &circuit)
{
    for (int attempt = 0; attempt < 1000; ++attempt) {
        StabilizerState state(circuit.numQubits());
        std::uint64_t reg = 0;
        if (runShot(circuit, state, reg))
            return state;
    }
    throw SimulationError("post-selection discarded every trajectory");
}

} // namespace qra
