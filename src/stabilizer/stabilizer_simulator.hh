/**
 * @file
 * Shot-based simulator on the stabilizer-tableau backend. Runs
 * Clifford circuits (which includes every assertion circuit in the
 * paper) at qubit counts far beyond state-vector reach.
 */

#ifndef QRA_STABILIZER_STABILIZER_SIMULATOR_HH
#define QRA_STABILIZER_STABILIZER_SIMULATOR_HH

#include <cstdint>

#include "circuit/circuit.hh"
#include "common/rng.hh"
#include "sim/result.hh"
#include "stabilizer/stabilizer_state.hh"

namespace qra {

/** Clifford-circuit execution engine. */
class StabilizerSimulator
{
  public:
    explicit StabilizerSimulator(std::uint64_t seed = 7);

    /**
     * True when every instruction of @p circuit is executable on the
     * stabilizer backend.
     */
    static bool supports(const Circuit &circuit);

    /**
     * Execute @p circuit for @p shots shots.
     *
     * Shots discarded by PostSelect directives are re-attempted, as
     * on the other backends.
     * @throws SimulationError on non-Clifford gates.
     */
    Result run(const Circuit &circuit, std::size_t shots);

    /** Evolve one trajectory and return the final tableau state. */
    StabilizerState evolveOne(const Circuit &circuit);

    void seed(std::uint64_t seed) { rng_.seed(seed); }

  private:
    /** @return false when the shot was discarded by post-selection. */
    bool runShot(const Circuit &circuit, StabilizerState &state,
                 std::uint64_t &register_value);

    Rng rng_;
};

} // namespace qra

#endif // QRA_STABILIZER_STABILIZER_SIMULATOR_HH
