/**
 * @file
 * Stabilizer-tableau simulation state (Aaronson-Gottesman CHP).
 *
 * Every assertion circuit in the paper is Clifford (H, X, CNOT,
 * measurement), so assertion checking itself scales far beyond
 * state-vector reach on this backend: a GHZ-500 entanglement
 * assertion runs in milliseconds. The tableau tracks n destabilizer
 * and n stabilizer generators as X/Z bit rows with a sign bit.
 */

#ifndef QRA_STABILIZER_STABILIZER_STATE_HH
#define QRA_STABILIZER_STABILIZER_STATE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/gate.hh"
#include "common/rng.hh"
#include "math/types.hh"

namespace qra {

/** Stabilizer state over n qubits, initialised to |0...0>. */
class StabilizerState
{
  public:
    /** @param num_qubits Register size (no power-of-two limits). */
    explicit StabilizerState(std::size_t num_qubits);

    std::size_t numQubits() const { return numQubits_; }

    /** True when @p kind can be applied on this backend. */
    static bool isCliffordOp(OpKind kind);

    // --- Clifford gates ------------------------------------------------

    void applyH(Qubit q);
    void applyS(Qubit q);
    void applySdg(Qubit q);
    void applyX(Qubit q);
    void applyY(Qubit q);
    void applyZ(Qubit q);
    void applySx(Qubit q);
    void applyCx(Qubit control, Qubit target);
    void applyCy(Qubit control, Qubit target);
    void applyCz(Qubit a, Qubit b);
    void applySwap(Qubit a, Qubit b);

    /**
     * Apply one circuit operation.
     * @throws SimulationError for non-Clifford gates (T, RX, ...).
     */
    void applyUnitary(const Operation &op);

    // --- Measurement ---------------------------------------------------

    /** True when a Z measurement of @p q has a fixed outcome. */
    bool isDeterministic(Qubit q) const;

    /** P(measure q = 1): exactly 0, 0.5, or 1 for stabilizer states. */
    double probabilityOfOne(Qubit q) const;

    /** Measure @p q in the computational basis (collapsing). */
    int measure(Qubit q, Rng &rng);

    /**
     * Project @p q onto @p outcome.
     * @return Branch probability (0, 0.5 or 1); the state is
     *         unchanged when the return value is 0.
     */
    double postSelect(Qubit q, int outcome);

    /** Reset @p q to |0>. */
    void resetQubit(Qubit q, Rng &rng);

    /**
     * Stabilizer generators as Pauli strings, e.g. "+XX" and "+ZZ"
     * for a Bell pair. Qubit 0 is the leftmost character.
     */
    std::vector<std::string> stabilizerStrings() const;

  private:
    /** Row-encoded Pauli operator with sign. */
    struct Row
    {
        std::vector<std::uint8_t> x;
        std::vector<std::uint8_t> z;
        std::uint8_t r = 0; ///< sign bit: 0 -> +1, 1 -> -1

        explicit Row(std::size_t n) : x(n, 0), z(n, 0) {}
    };

    void checkQubit(Qubit q) const;

    /** row[h] *= row[i] with CHP phase arithmetic. */
    void rowsum(Row &h, const Row &i) const;

    /**
     * First stabilizer row index whose X bit at @p q is set, or
     * numQubits_ * 2 when none (deterministic measurement).
     */
    std::size_t findRandomizingRow(Qubit q) const;

    /** Apply a forced measurement outcome via the CHP update. */
    void collapse(Qubit q, std::size_t p, int outcome);

    /** Deterministic outcome of measuring @p q (requires such). */
    int deterministicOutcome(Qubit q) const;

    std::size_t numQubits_;
    /** rows [0, n): destabilizers; rows [n, 2n): stabilizers. */
    std::vector<Row> rows_;
};

} // namespace qra

#endif // QRA_STABILIZER_STABILIZER_STATE_HH
