#include "stabilizer/stabilizer_state.hh"

#include "common/error.hh"

namespace qra {

StabilizerState::StabilizerState(std::size_t num_qubits)
    : numQubits_(num_qubits)
{
    if (num_qubits == 0)
        throw SimulationError("stabilizer state needs >= 1 qubit");
    if (num_qubits > 4096)
        throw SimulationError("stabilizer backend caps at 4096 "
                              "qubits");

    rows_.assign(2 * num_qubits, Row(num_qubits));
    for (std::size_t i = 0; i < num_qubits; ++i) {
        rows_[i].x[i] = 1;               // destabilizer X_i
        rows_[num_qubits + i].z[i] = 1;  // stabilizer Z_i
    }
}

void
StabilizerState::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw IndexError("qubit index " + std::to_string(q) +
                         " out of range");
}

bool
StabilizerState::isCliffordOp(OpKind kind)
{
    switch (kind) {
      case OpKind::I: case OpKind::X: case OpKind::Y: case OpKind::Z:
      case OpKind::H: case OpKind::S: case OpKind::Sdg:
      case OpKind::SX: case OpKind::CX: case OpKind::CY:
      case OpKind::CZ: case OpKind::Swap:
        return true;
      default:
        return false;
    }
}

// --- Gate conjugation rules ---------------------------------------------

void
StabilizerState::applyH(Qubit q)
{
    checkQubit(q);
    for (Row &row : rows_) {
        row.r ^= row.x[q] & row.z[q];
        std::swap(row.x[q], row.z[q]);
    }
}

void
StabilizerState::applyS(Qubit q)
{
    checkQubit(q);
    for (Row &row : rows_) {
        row.r ^= row.x[q] & row.z[q];
        row.z[q] ^= row.x[q];
    }
}

void
StabilizerState::applySdg(Qubit q)
{
    // Sdg = S Z: apply Z phase first, then S.
    applyZ(q);
    applyS(q);
}

void
StabilizerState::applyX(Qubit q)
{
    checkQubit(q);
    // Conjugation by X flips the sign of any row with a Z component.
    for (Row &row : rows_)
        row.r ^= row.z[q];
}

void
StabilizerState::applyZ(Qubit q)
{
    checkQubit(q);
    for (Row &row : rows_)
        row.r ^= row.x[q];
}

void
StabilizerState::applyY(Qubit q)
{
    checkQubit(q);
    for (Row &row : rows_)
        row.r ^= row.x[q] ^ row.z[q];
}

void
StabilizerState::applySx(Qubit q)
{
    // SX == H S H exactly (no phase discrepancy).
    applyH(q);
    applyS(q);
    applyH(q);
}

void
StabilizerState::applyCx(Qubit control, Qubit target)
{
    checkQubit(control);
    checkQubit(target);
    if (control == target)
        throw SimulationError("cx with identical operands");
    for (Row &row : rows_) {
        row.r ^= row.x[control] & row.z[target] &
                 (row.x[target] ^ row.z[control] ^ 1);
        row.x[target] ^= row.x[control];
        row.z[control] ^= row.z[target];
    }
}

void
StabilizerState::applyCz(Qubit a, Qubit b)
{
    // CZ = H(b) CX(a, b) H(b).
    applyH(b);
    applyCx(a, b);
    applyH(b);
}

void
StabilizerState::applyCy(Qubit control, Qubit target)
{
    // CY = Sdg(t) CX(c, t) S(t).
    applySdg(target);
    applyCx(control, target);
    applyS(target);
}

void
StabilizerState::applySwap(Qubit a, Qubit b)
{
    applyCx(a, b);
    applyCx(b, a);
    applyCx(a, b);
}

void
StabilizerState::applyUnitary(const Operation &op)
{
    switch (op.kind) {
      case OpKind::I:
        return;
      case OpKind::X:
        return applyX(op.qubits[0]);
      case OpKind::Y:
        return applyY(op.qubits[0]);
      case OpKind::Z:
        return applyZ(op.qubits[0]);
      case OpKind::H:
        return applyH(op.qubits[0]);
      case OpKind::S:
        return applyS(op.qubits[0]);
      case OpKind::Sdg:
        return applySdg(op.qubits[0]);
      case OpKind::SX:
        return applySx(op.qubits[0]);
      case OpKind::CX:
        return applyCx(op.qubits[0], op.qubits[1]);
      case OpKind::CY:
        return applyCy(op.qubits[0], op.qubits[1]);
      case OpKind::CZ:
        return applyCz(op.qubits[0], op.qubits[1]);
      case OpKind::Swap:
        return applySwap(op.qubits[0], op.qubits[1]);
      default:
        throw SimulationError(
            std::string("gate '") + opName(op.kind) +
            "' is not Clifford; the stabilizer backend cannot "
            "apply it");
    }
}

// --- Measurement ----------------------------------------------------------

void
StabilizerState::rowsum(Row &h, const Row &i) const
{
    // Phase exponent of the product, tracked mod 4: 2*r terms plus
    // the per-qubit g() contributions.
    int phase = 2 * h.r + 2 * i.r;
    for (std::size_t j = 0; j < numQubits_; ++j) {
        const int x1 = i.x[j], z1 = i.z[j];
        const int x2 = h.x[j], z2 = h.z[j];
        if (x1 == 0 && z1 == 0)
            continue;
        if (x1 == 1 && z1 == 1)
            phase += z2 - x2;
        else if (x1 == 1)
            phase += z2 * (2 * x2 - 1);
        else
            phase += x2 * (1 - 2 * z2);
    }
    phase %= 4;
    if (phase < 0)
        phase += 4;
    // For stabilizer-row products the exponent is provably 0 or 2;
    // destabilizer rows can pick up odd exponents during collapse,
    // but their sign bits are never read, so the truncation below is
    // harmless (as in the original CHP formulation).
    h.r = phase == 2 ? 1 : 0;
    for (std::size_t j = 0; j < numQubits_; ++j) {
        h.x[j] ^= i.x[j];
        h.z[j] ^= i.z[j];
    }
}

std::size_t
StabilizerState::findRandomizingRow(Qubit q) const
{
    for (std::size_t p = numQubits_; p < 2 * numQubits_; ++p)
        if (rows_[p].x[q])
            return p;
    return 2 * numQubits_;
}

bool
StabilizerState::isDeterministic(Qubit q) const
{
    checkQubit(q);
    return findRandomizingRow(q) == 2 * numQubits_;
}

int
StabilizerState::deterministicOutcome(Qubit q) const
{
    // Accumulate the product of stabilizers whose destabilizer
    // partner anticommutes with Z_q into a scratch row; its sign is
    // the outcome.
    Row scratch(numQubits_);
    for (std::size_t i = 0; i < numQubits_; ++i)
        if (rows_[i].x[q])
            rowsum(scratch, rows_[numQubits_ + i]);
    return scratch.r;
}

double
StabilizerState::probabilityOfOne(Qubit q) const
{
    checkQubit(q);
    if (!isDeterministic(q))
        return 0.5;
    return deterministicOutcome(q) ? 1.0 : 0.0;
}

void
StabilizerState::collapse(Qubit q, std::size_t p, int outcome)
{
    // All other rows anticommuting with Z_q absorb row p.
    for (std::size_t i = 0; i < 2 * numQubits_; ++i)
        if (i != p && rows_[i].x[q])
            rowsum(rows_[i], rows_[p]);

    // Old stabilizer becomes the destabilizer; the new stabilizer is
    // +/- Z_q per the outcome.
    rows_[p - numQubits_] = rows_[p];
    Row fresh(numQubits_);
    fresh.z[q] = 1;
    fresh.r = outcome ? 1 : 0;
    rows_[p] = fresh;
}

int
StabilizerState::measure(Qubit q, Rng &rng)
{
    checkQubit(q);
    const std::size_t p = findRandomizingRow(q);
    if (p == 2 * numQubits_)
        return deterministicOutcome(q);

    const int outcome = rng.uniform() < 0.5 ? 0 : 1;
    collapse(q, p, outcome);
    return outcome;
}

double
StabilizerState::postSelect(Qubit q, int outcome)
{
    checkQubit(q);
    const std::size_t p = findRandomizingRow(q);
    if (p == 2 * numQubits_) {
        // Deterministic: either certain match or impossible branch.
        return deterministicOutcome(q) == outcome ? 1.0 : 0.0;
    }
    collapse(q, p, outcome);
    return 0.5;
}

void
StabilizerState::resetQubit(Qubit q, Rng &rng)
{
    if (measure(q, rng) == 1)
        applyX(q);
}

std::vector<std::string>
StabilizerState::stabilizerStrings() const
{
    std::vector<std::string> out;
    out.reserve(numQubits_);
    for (std::size_t i = numQubits_; i < 2 * numQubits_; ++i) {
        const Row &row = rows_[i];
        std::string s(1, row.r ? '-' : '+');
        for (std::size_t j = 0; j < numQubits_; ++j) {
            if (row.x[j] && row.z[j])
                s += 'Y';
            else if (row.x[j])
                s += 'X';
            else if (row.z[j])
                s += 'Z';
            else
                s += 'I';
        }
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace qra
