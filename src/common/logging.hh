/**
 * @file
 * Minimal leveled logging for the QRA library.
 *
 * Logging defaults to warnings-and-above on stderr. Benchmarks and
 * examples raise the level to Info for progress reporting; tests
 * silence it entirely.
 */

#ifndef QRA_COMMON_LOGGING_HH
#define QRA_COMMON_LOGGING_HH

#include <sstream>
#include <string>

namespace qra {

/** Severity levels, ordered from most to least verbose. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Silent = 3 };

/** Process-wide logger configuration and sink. */
class Logger
{
  public:
    /** Set the minimum severity that will be emitted. */
    static void setLevel(LogLevel level);

    /** Current minimum severity. */
    static LogLevel level();

    /** Emit one message at the given severity (no newline needed). */
    static void log(LogLevel severity, const std::string &msg);

  private:
    static LogLevel minLevel_;
};

/** Emit a debug-level message. */
void logDebug(const std::string &msg);
/** Emit an info-level message. */
void logInfo(const std::string &msg);
/** Emit a warning-level message. */
void logWarn(const std::string &msg);

} // namespace qra

#endif // QRA_COMMON_LOGGING_HH
