/**
 * @file
 * Minimal leveled logging for the QRA library.
 *
 * Logging defaults to warnings-and-above on stderr. Benchmarks and
 * examples raise the level to Info for progress reporting; tests
 * silence it entirely. The `QRA_LOG` environment variable
 * (debug|info|warn|silent) overrides the default at startup; explicit
 * setLevel() calls still win afterwards.
 *
 * The level is an atomic: worker threads read it on every emission
 * while tests/benchmarks mutate it at runtime, so a plain static
 * would be a data race.
 *
 * Structured suffixes: the field-taking overloads append
 * ` key=value` pairs so log lines stay grep/parse friendly —
 *   logInfo("wave converged", {{"wave", "3"}, {"shots", "2048"}});
 * emits `[qra:info] wave converged wave=3 shots=2048`.
 */

#ifndef QRA_COMMON_LOGGING_HH
#define QRA_COMMON_LOGGING_HH

#include <atomic>
#include <initializer_list>
#include <sstream>
#include <string>
#include <utility>

namespace qra {

/** Severity levels, ordered from most to least verbose. */
enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Silent = 3 };

/** One structured `key=value` suffix field. */
using LogField = std::pair<const char *, std::string>;
using LogFields = std::initializer_list<LogField>;

/** Process-wide logger configuration and sink. */
class Logger
{
  public:
    /** Set the minimum severity that will be emitted. Thread-safe. */
    static void setLevel(LogLevel level);

    /** Current minimum severity. */
    static LogLevel level();

    /** Emit one message at the given severity (no newline needed). */
    static void log(LogLevel severity, const std::string &msg);

    /** Emit a message with structured ` key=value` suffixes. */
    static void log(LogLevel severity, const std::string &msg,
                    LogFields fields);

  private:
    static std::atomic<LogLevel> minLevel_;
};

/** Emit a debug-level message. */
void logDebug(const std::string &msg);
void logDebug(const std::string &msg, LogFields fields);
/** Emit an info-level message. */
void logInfo(const std::string &msg);
void logInfo(const std::string &msg, LogFields fields);
/** Emit a warning-level message. */
void logWarn(const std::string &msg);
void logWarn(const std::string &msg, LogFields fields);

} // namespace qra

#endif // QRA_COMMON_LOGGING_HH
