#include "common/logging.hh"

#include <iostream>

namespace qra {

LogLevel Logger::minLevel_ = LogLevel::Warn;

void
Logger::setLevel(LogLevel level)
{
    minLevel_ = level;
}

LogLevel
Logger::level()
{
    return minLevel_;
}

void
Logger::log(LogLevel severity, const std::string &msg)
{
    if (severity < minLevel_)
        return;

    const char *tag = "";
    switch (severity) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Silent: return;
    }
    std::cerr << "[qra:" << tag << "] " << msg << "\n";
}

void
logDebug(const std::string &msg)
{
    Logger::log(LogLevel::Debug, msg);
}

void
logInfo(const std::string &msg)
{
    Logger::log(LogLevel::Info, msg);
}

void
logWarn(const std::string &msg)
{
    Logger::log(LogLevel::Warn, msg);
}

} // namespace qra
