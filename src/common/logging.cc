#include "common/logging.hh"

#include <cstdlib>
#include <cstring>
#include <iostream>

namespace qra {

namespace {

/** Startup default: QRA_LOG env override, else warnings-and-above. */
LogLevel
initialLevel()
{
    const char *env = std::getenv("QRA_LOG");
    if (env == nullptr)
        return LogLevel::Warn;
    if (std::strcmp(env, "debug") == 0)
        return LogLevel::Debug;
    if (std::strcmp(env, "info") == 0)
        return LogLevel::Info;
    if (std::strcmp(env, "warn") == 0)
        return LogLevel::Warn;
    if (std::strcmp(env, "silent") == 0)
        return LogLevel::Silent;
    // Unrecognised value: keep the default rather than surprise-
    // silencing; one warning so the typo is discoverable.
    std::cerr << "[qra:warn] unrecognised QRA_LOG value \"" << env
              << "\" (expected debug|info|warn|silent)\n";
    return LogLevel::Warn;
}

} // namespace

std::atomic<LogLevel> Logger::minLevel_{initialLevel()};

void
Logger::setLevel(LogLevel level)
{
    minLevel_.store(level, std::memory_order_relaxed);
}

LogLevel
Logger::level()
{
    return minLevel_.load(std::memory_order_relaxed);
}

void
Logger::log(LogLevel severity, const std::string &msg)
{
    log(severity, msg, {});
}

void
Logger::log(LogLevel severity, const std::string &msg,
            LogFields fields)
{
    if (severity < minLevel_.load(std::memory_order_relaxed))
        return;

    const char *tag = "";
    switch (severity) {
      case LogLevel::Debug: tag = "debug"; break;
      case LogLevel::Info:  tag = "info";  break;
      case LogLevel::Warn:  tag = "warn";  break;
      case LogLevel::Silent: return;
    }
    // One formatted write: interleaved-safe enough for stderr lines.
    std::ostringstream line;
    line << "[qra:" << tag << "] " << msg;
    for (const LogField &field : fields)
        line << " " << field.first << "=" << field.second;
    line << "\n";
    std::cerr << line.str();
}

void
logDebug(const std::string &msg)
{
    Logger::log(LogLevel::Debug, msg);
}

void
logDebug(const std::string &msg, LogFields fields)
{
    Logger::log(LogLevel::Debug, msg, fields);
}

void
logInfo(const std::string &msg)
{
    Logger::log(LogLevel::Info, msg);
}

void
logInfo(const std::string &msg, LogFields fields)
{
    Logger::log(LogLevel::Info, msg, fields);
}

void
logWarn(const std::string &msg)
{
    Logger::log(LogLevel::Warn, msg);
}

void
logWarn(const std::string &msg, LogFields fields)
{
    Logger::log(LogLevel::Warn, msg, fields);
}

} // namespace qra
