/**
 * @file
 * Error and exception types used across the QRA library.
 *
 * Follows the gem5 convention: fatal() reports user errors (bad
 * arguments, malformed circuits) and panic() reports internal library
 * bugs that should never happen regardless of user input.
 *
 * Failures are additionally classified transient vs. permanent for
 * the runtime's retry machinery: a transient failure (resource
 * pressure, an injected test fault, a flaky backend) may succeed when
 * the identical work is re-run, while a permanent one (bad arguments,
 * an unsupported circuit) never will. transient() on the exception
 * class carries the classification; isTransient() classifies an
 * in-flight exception_ptr, treating std::bad_alloc as transient too
 * (memory pressure clears).
 */

#ifndef QRA_COMMON_ERROR_HH
#define QRA_COMMON_ERROR_HH

#include <exception>
#include <stdexcept>
#include <string>

namespace qra {

/** Base class of every exception thrown by the QRA library. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}

    /**
     * Whether re-running the identical work may succeed. Permanent by
     * default; transient subclasses (and std::bad_alloc, see
     * isTransient()) opt in to the retry machinery.
     */
    virtual bool transient() const { return false; }
};

/** A user-facing error: invalid arguments, malformed input, etc. */
class ValueError : public Error
{
  public:
    explicit ValueError(const std::string &msg) : Error(msg) {}
};

/** An index (qubit, clbit, op position) was out of range. */
class IndexError : public Error
{
  public:
    explicit IndexError(const std::string &msg) : Error(msg) {}
};

/** Errors raised while building or mutating circuits. */
class CircuitError : public Error
{
  public:
    explicit CircuitError(const std::string &msg) : Error(msg) {}
};

/** Errors raised by the simulation backends. */
class SimulationError : public Error
{
  public:
    explicit SimulationError(const std::string &msg) : Error(msg) {}
};

/**
 * A backend/shard failure expected to clear on retry: resource
 * pressure, a stalled executor, an injected test fault. The JobQueue
 * and ExecutionEngine re-run shards that fail with a transient error
 * (up to the job's RetryPolicy) with their original RNG streams, so a
 * retried run's counts are bit-identical to a fault-free one.
 */
class TransientSimulationError : public SimulationError
{
  public:
    explicit TransientSimulationError(const std::string &msg)
        : SimulationError(msg)
    {
    }

    bool transient() const override { return true; }
};

/** Errors raised by noise channels and device models. */
class NoiseError : public Error
{
  public:
    explicit NoiseError(const std::string &msg) : Error(msg) {}
};

/** Errors raised by the transpiler (unroutable circuit, bad map...). */
class TranspileError : public Error
{
  public:
    explicit TranspileError(const std::string &msg) : Error(msg) {}
};

/** Errors raised while parsing OpenQASM text. */
class QasmError : public Error
{
  public:
    explicit QasmError(const std::string &msg) : Error(msg) {}
};

/** Errors raised by the assertion instrumentation layer. */
class AssertionError : public Error
{
  public:
    explicit AssertionError(const std::string &msg) : Error(msg) {}
};

/**
 * Report an unrecoverable *user* error. Throws ValueError with file
 * and line context attached.
 *
 * @param file Source file of the call site (use __FILE__).
 * @param line Source line of the call site (use __LINE__).
 * @param msg Human-readable description of the error.
 */
[[noreturn]] void fatal(const char *file, int line, const std::string &msg);

/**
 * Report an internal library bug. Throws Error with file and line
 * context attached; this indicates a broken invariant inside QRA.
 */
[[noreturn]] void panic(const char *file, int line, const std::string &msg);

/**
 * Classify an in-flight exception for the retry machinery.
 *
 * @return True for qra::Error subclasses whose transient() is true
 *         and for std::bad_alloc (memory pressure may clear); false
 *         for every other exception — including a null @p error.
 */
bool isTransient(const std::exception_ptr &error);

} // namespace qra

/** Convenience wrapper: user-level fatal error at the call site. */
#define QRA_FATAL(msg) ::qra::fatal(__FILE__, __LINE__, (msg))

/** Convenience wrapper: internal invariant violation at the call site. */
#define QRA_PANIC(msg) ::qra::panic(__FILE__, __LINE__, (msg))

/** Check an internal invariant; panic with the condition text if false. */
#define QRA_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond))                                                       \
            ::qra::panic(__FILE__, __LINE__,                               \
                         std::string("assertion failed: ") + #cond +      \
                         " — " + (msg));                                   \
    } while (0)

#endif // QRA_COMMON_ERROR_HH
