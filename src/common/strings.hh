/**
 * @file
 * String and bitstring helpers shared across modules.
 *
 * Bitstring convention: the library renders measurement outcomes the
 * way the paper's tables do, most-significant classical bit first.
 * Classical bit 0 is therefore the *rightmost* character, matching
 * the usual little-endian qubit-0-is-LSB convention.
 */

#ifndef QRA_COMMON_STRINGS_HH
#define QRA_COMMON_STRINGS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace qra {

/**
 * Render the low @p width bits of @p value as a bitstring,
 * most-significant bit first (e.g. value 2, width 3 -> "010").
 */
std::string toBitstring(std::uint64_t value, std::size_t width);

/**
 * Parse a bitstring (MSB first) back into an integer.
 * @throws ValueError if the string contains non-binary characters.
 */
std::uint64_t fromBitstring(const std::string &bits);

/** Join @p parts with @p sep between consecutive elements. */
std::string join(const std::vector<std::string> &parts,
                 const std::string &sep);

/** printf-style double formatting, e.g. formatDouble(0.1234, 1) "12.3". */
std::string formatPercent(double fraction, int decimals = 1);

/** Fixed-decimals rendering of a double. */
std::string formatDouble(double value, int decimals = 4);

} // namespace qra

#endif // QRA_COMMON_STRINGS_HH
