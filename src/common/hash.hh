/**
 * @file
 * FNV-1a hashing primitives shared by the circuit semantic hash and
 * the runtime preparation cache.
 */

#ifndef QRA_COMMON_HASH_HH
#define QRA_COMMON_HASH_HH

#include <cstdint>
#include <string>

namespace qra {

/** FNV-1a 64-bit offset basis. */
inline constexpr std::uint64_t kFnv1aOffset = 0xcbf29ce484222325ULL;

/** Fold one 64-bit word into an FNV-1a state, byte by byte. */
inline std::uint64_t
fnv1aMix64(std::uint64_t h, std::uint64_t value)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    for (int byte = 0; byte < 8; ++byte) {
        h ^= (value >> (8 * byte)) & 0xffULL;
        h *= kPrime;
    }
    return h;
}

/** Fold a length-prefixed byte string into an FNV-1a state. */
inline std::uint64_t
fnv1aMixString(std::uint64_t h, const std::string &text)
{
    h = fnv1aMix64(h, text.size());
    for (const char c : text)
        h = fnv1aMix64(h, static_cast<unsigned char>(c));
    return h;
}

} // namespace qra

#endif // QRA_COMMON_HASH_HH
