#include "common/error.hh"

#include <sstream>

namespace qra {

namespace {

std::string
decorate(const char *kind, const char *file, int line,
         const std::string &msg)
{
    std::ostringstream os;
    os << kind << ": " << msg << " [" << file << ":" << line << "]";
    return os.str();
}

} // namespace

void
fatal(const char *file, int line, const std::string &msg)
{
    throw ValueError(decorate("fatal", file, line, msg));
}

void
panic(const char *file, int line, const std::string &msg)
{
    throw Error(decorate("panic", file, line, msg));
}

bool
isTransient(const std::exception_ptr &error)
{
    if (!error)
        return false;
    try {
        std::rethrow_exception(error);
    } catch (const Error &e) {
        return e.transient();
    } catch (const std::bad_alloc &) {
        return true;
    } catch (...) {
        return false;
    }
}

} // namespace qra
