/**
 * @file
 * Seeded random number generation for simulators and samplers.
 *
 * Two engines are provided: a fast xoshiro256++ implementation used on
 * hot sampling paths, and a std::mt19937_64 adapter for callers that
 * want the standard engine. Both satisfy UniformRandomBitGenerator so
 * they compose with <random> distributions.
 */

#ifndef QRA_COMMON_RNG_HH
#define QRA_COMMON_RNG_HH

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

namespace qra {

/**
 * xoshiro256++ pseudo-random generator (Blackman & Vigna).
 *
 * Small, fast, and statistically strong; the default engine for
 * measurement sampling and Monte-Carlo trajectory branching.
 */
class Xoshiro256
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed, expanded via splitmix64. */
    explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Reseed the generator, replacing the entire internal state. */
    void seed(std::uint64_t seed);

    /** Produce the next 64 random bits. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t below(std::uint64_t bound);

    static constexpr result_type min() { return 0; }
    static constexpr result_type
    max()
    {
        return std::numeric_limits<result_type>::max();
    }

  private:
    std::uint64_t state_[4];
};

/** Default library-wide RNG type. */
using Rng = Xoshiro256;

/**
 * Derive an independent seed for a numbered RNG stream.
 *
 * Mixes @p base and @p stream through splitmix64 so that streams
 * split from the same base seed are statistically independent. Used
 * by the execution engine to give every shot-shard its own RNG
 * stream: the derived seeds depend only on (job seed, shard index),
 * never on the thread that happens to run the shard, which keeps
 * sharded execution deterministic at any thread count.
 */
std::uint64_t splitSeed(std::uint64_t base, std::uint64_t stream);

/**
 * Draw an index from a discrete probability distribution.
 *
 * @param probs Probabilities; they should sum to ~1 but small
 *              numerical drift is tolerated (the tail absorbs it).
 * @param rng Random generator supplying the uniform variate.
 * @return Sampled index in [0, probs.size()).
 */
std::size_t sampleDiscrete(const std::vector<double> &probs, Rng &rng);

} // namespace qra

#endif // QRA_COMMON_RNG_HH
