#include "common/rng.hh"

#include "common/error.hh"

namespace qra {

namespace {

/** splitmix64: seed expander recommended by the xoshiro authors. */
std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed_value)
{
    seed(seed_value);
}

void
Xoshiro256::seed(std::uint64_t seed_value)
{
    std::uint64_t sm = seed_value;
    for (auto &word : state_)
        word = splitmix64(sm);
}

Xoshiro256::result_type
Xoshiro256::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Xoshiro256::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t
Xoshiro256::below(std::uint64_t bound)
{
    QRA_ASSERT(bound > 0, "sampling bound must be positive");
    // Rejection-free Lemire reduction is overkill here; modulo bias is
    // negligible for bound << 2^64 which holds for all library uses.
    return (*this)() % bound;
}

std::uint64_t
splitSeed(std::uint64_t base, std::uint64_t stream)
{
    // Two splitmix64 rounds over a mix of base and stream. A plain
    // base + stream would make streams of adjacent jobs collide
    // (job 7 stream 1 == job 8 stream 0); the golden-ratio multiply
    // decorrelates the two inputs before mixing.
    std::uint64_t x = base ^ (stream * 0x9e3779b97f4a7c15ULL +
                              0x6a09e667f3bcc909ULL);
    splitmix64(x);
    return splitmix64(x);
}

std::size_t
sampleDiscrete(const std::vector<double> &probs, Rng &rng)
{
    QRA_ASSERT(!probs.empty(), "cannot sample from empty distribution");
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::size_t i = 0; i < probs.size(); ++i) {
        acc += probs[i];
        if (u < acc)
            return i;
    }
    // Numerical drift: the cumulative sum fell slightly short of 1.
    return probs.size() - 1;
}

} // namespace qra
