#include "common/strings.hh"

#include <cstdio>

#include "common/error.hh"

namespace qra {

std::string
toBitstring(std::uint64_t value, std::size_t width)
{
    std::string out(width, '0');
    for (std::size_t i = 0; i < width; ++i) {
        if ((value >> i) & 1ULL)
            out[width - 1 - i] = '1';
    }
    return out;
}

std::uint64_t
fromBitstring(const std::string &bits)
{
    std::uint64_t value = 0;
    for (char c : bits) {
        if (c != '0' && c != '1')
            QRA_FATAL("invalid bitstring character: '" +
                      std::string(1, c) + "'");
        value = (value << 1) | static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

std::string
join(const std::vector<std::string> &parts, const std::string &sep)
{
    std::string out;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

std::string
formatPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
formatDouble(double value, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace qra
