#include "circuit/qasm.hh"

#include <cctype>
#include <cmath>
#include <sstream>

#include "common/error.hh"

namespace qra {

// --- Export ------------------------------------------------------------

std::string
toQasm(const Circuit &circuit)
{
    std::ostringstream os;
    // Full round-trip precision for gate parameters.
    os.precision(17);
    os << "OPENQASM 2.0;\n";
    os << "include \"qelib1.inc\";\n";
    os << "qreg q[" << circuit.numQubits() << "];\n";
    if (circuit.numClbits() > 0)
        os << "creg c[" << circuit.numClbits() << "];\n";

    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Measure:
            os << "measure q[" << op.qubits[0] << "] -> c["
               << *op.clbit << "];\n";
            continue;
          case OpKind::PostSelect:
            os << "// qra:postselect q[" << op.qubits[0] << "] == "
               << op.postselectValue << "\n";
            continue;
          case OpKind::Barrier:
            os << "barrier";
            for (std::size_t i = 0; i < op.qubits.size(); ++i)
                os << (i ? ", q[" : " q[") << op.qubits[i] << "]";
            os << ";\n";
            continue;
          default:
            break;
        }

        os << opName(op.kind);
        if (!op.params.empty()) {
            os << "(";
            for (std::size_t i = 0; i < op.params.size(); ++i) {
                if (i)
                    os << ", ";
                os << op.params[i];
            }
            os << ")";
        }
        for (std::size_t i = 0; i < op.qubits.size(); ++i)
            os << (i ? ", q[" : " q[") << op.qubits[i] << "]";
        os << ";\n";
    }
    return os.str();
}

// --- Import ------------------------------------------------------------

namespace {

/** Recursive-descent evaluator for QASM parameter expressions. */
class ExprParser
{
  public:
    explicit ExprParser(const std::string &text) : text_(text) {}

    double
    parse()
    {
        const double v = expr();
        skipWs();
        if (pos_ != text_.size())
            throw QasmError("trailing characters in expression: '" +
                            text_ + "'");
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    double
    expr()
    {
        double v = term();
        for (;;) {
            if (consume('+'))
                v += term();
            else if (consume('-'))
                v -= term();
            else
                return v;
        }
    }

    double
    term()
    {
        double v = unary();
        for (;;) {
            if (consume('*'))
                v *= unary();
            else if (consume('/')) {
                const double d = unary();
                if (d == 0.0)
                    throw QasmError("division by zero in expression");
                v /= d;
            } else {
                return v;
            }
        }
    }

    double
    unary()
    {
        if (consume('-'))
            return -unary();
        if (consume('+'))
            return unary();
        return atom();
    }

    double
    atom()
    {
        skipWs();
        if (consume('(')) {
            const double v = expr();
            if (!consume(')'))
                throw QasmError("missing ')' in expression");
            return v;
        }
        if (text_.compare(pos_, 2, "pi") == 0) {
            pos_ += 2;
            return M_PI;
        }
        std::size_t end = pos_;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E' ||
                ((text_[end] == '+' || text_[end] == '-') && end > pos_ &&
                 (text_[end - 1] == 'e' || text_[end - 1] == 'E')))) {
            ++end;
        }
        if (end == pos_)
            throw QasmError("expected number in expression: '" + text_ +
                            "'");
        const double v = std::stod(text_.substr(pos_, end - pos_));
        pos_ = end;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Parse "q[3]" into the index 3, validating the register name. */
std::size_t
parseRegIndex(const std::string &token, const std::string &reg_name)
{
    const std::string prefix = reg_name + "[";
    if (token.compare(0, prefix.size(), prefix) != 0 ||
        token.back() != ']') {
        throw QasmError("expected " + reg_name + "[i], got '" + token +
                        "'");
    }
    const std::string digits =
        token.substr(prefix.size(), token.size() - prefix.size() - 1);
    if (digits.empty())
        throw QasmError("empty register index in '" + token + "'");
    for (char c : digits)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            throw QasmError("bad register index in '" + token + "'");
    return std::stoul(digits);
}

/** Strip leading/trailing whitespace. */
std::string
strip(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Split on a delimiter, stripping each piece. */
std::vector<std::string>
splitStrip(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string piece;
    std::istringstream is(s);
    while (std::getline(is, piece, delim))
        out.push_back(strip(piece));
    return out;
}

OpKind
kindFromName(const std::string &name)
{
    static const std::pair<const char *, OpKind> table[] = {
        {"id", OpKind::I},   {"x", OpKind::X},     {"y", OpKind::Y},
        {"z", OpKind::Z},    {"h", OpKind::H},     {"s", OpKind::S},
        {"sdg", OpKind::Sdg}, {"t", OpKind::T},    {"tdg", OpKind::Tdg},
        {"sx", OpKind::SX},  {"rx", OpKind::RX},   {"ry", OpKind::RY},
        {"rz", OpKind::RZ},  {"p", OpKind::P},     {"u", OpKind::U},
        {"u3", OpKind::U},   {"u1", OpKind::P},    {"cx", OpKind::CX},
        {"cy", OpKind::CY},  {"cz", OpKind::CZ},   {"swap", OpKind::Swap},
        {"ccx", OpKind::CCX}, {"reset", OpKind::Reset},
    };
    for (const auto &[n, k] : table)
        if (name == n)
            return k;
    throw QasmError("unknown gate '" + name + "'");
}

} // namespace

Circuit
fromQasm(const std::string &text)
{
    std::istringstream input(text);
    std::string line;

    std::size_t num_qubits = 0;
    std::size_t num_clbits = 0;
    std::vector<std::string> statements;

    // First pass: gather statements (split on ';') and directives.
    std::string pending;
    std::vector<std::string> raw_lines;
    while (std::getline(input, line)) {
        // Handle qra:postselect comment directives before stripping.
        const auto directive = line.find("// qra:postselect");
        if (directive != std::string::npos)
            raw_lines.push_back(strip(line.substr(directive)));
        const auto comment = line.find("//");
        if (comment != std::string::npos)
            line = line.substr(0, comment);
        pending += line + "\n";
    }

    std::string stmt;
    std::istringstream stmts(pending);
    while (std::getline(stmts, stmt, ';')) {
        stmt = strip(stmt);
        if (!stmt.empty())
            statements.push_back(stmt);
    }

    // Interleaving of postselect comments with statements is not
    // preserved by this two-pass scheme; postselects are rare and are
    // re-attached in order at the end of parsing below only when the
    // source had them after all gate statements (the exporter's form
    // keeps program order because it writes one statement per line, so
    // we re-parse in line order instead when directives are present).
    const bool has_postselect = !raw_lines.empty();

    std::size_t qreg_seen = 0;
    std::size_t creg_seen = 0;
    for (const std::string &s : statements) {
        if (s.rfind("qreg", 0) == 0) {
            num_qubits = parseRegIndex(strip(s.substr(4)), "q");
            ++qreg_seen;
        } else if (s.rfind("creg", 0) == 0) {
            num_clbits = parseRegIndex(strip(s.substr(4)), "c");
            ++creg_seen;
        }
    }
    if (qreg_seen != 1)
        throw QasmError("expected exactly one qreg declaration");
    if (creg_seen > 1)
        throw QasmError("expected at most one creg declaration");
    if (num_qubits == 0)
        throw QasmError("qreg must declare at least one qubit");

    Circuit circuit(num_qubits, num_clbits, "qasm");

    auto apply_statement = [&](const std::string &s) {
        if (s.rfind("OPENQASM", 0) == 0 || s.rfind("include", 0) == 0 ||
            s.rfind("qreg", 0) == 0 || s.rfind("creg", 0) == 0)
            return;

        if (s.rfind("// qra:postselect", 0) == 0) {
            // Form: // qra:postselect q[i] == v
            std::istringstream is(s.substr(17));
            std::string qtok, eq;
            int value = 0;
            is >> qtok >> eq >> value;
            if (eq != "==")
                throw QasmError("malformed postselect directive: " + s);
            circuit.postSelect(
                static_cast<Qubit>(parseRegIndex(qtok, "q")), value);
            return;
        }

        if (s.rfind("measure", 0) == 0) {
            const std::string rest = strip(s.substr(7));
            const auto arrow = rest.find("->");
            if (arrow == std::string::npos)
                throw QasmError("measure without '->': " + s);
            const std::size_t q =
                parseRegIndex(strip(rest.substr(0, arrow)), "q");
            const std::size_t c =
                parseRegIndex(strip(rest.substr(arrow + 2)), "c");
            circuit.measure(static_cast<Qubit>(q),
                            static_cast<Clbit>(c));
            return;
        }

        if (s.rfind("barrier", 0) == 0) {
            const std::string rest = strip(s.substr(7));
            std::vector<Qubit> qubits;
            if (rest == "q") {
                circuit.barrier();
                return;
            }
            for (const std::string &tok : splitStrip(rest, ','))
                if (!tok.empty())
                    qubits.push_back(
                        static_cast<Qubit>(parseRegIndex(tok, "q")));
            circuit.barrier(qubits);
            return;
        }

        // Generic gate: name[(params)] operand[, operand...]
        std::size_t name_end = 0;
        while (name_end < s.size() &&
               (std::isalnum(static_cast<unsigned char>(s[name_end]))))
            ++name_end;
        const std::string name = s.substr(0, name_end);
        std::string rest = strip(s.substr(name_end));

        std::vector<double> params;
        if (!rest.empty() && rest[0] == '(') {
            // Find the matching close paren (params may nest).
            std::size_t depth = 0;
            std::size_t close = std::string::npos;
            for (std::size_t i = 0; i < rest.size(); ++i) {
                if (rest[i] == '(') {
                    ++depth;
                } else if (rest[i] == ')') {
                    if (--depth == 0) {
                        close = i;
                        break;
                    }
                }
            }
            if (close == std::string::npos)
                throw QasmError("missing ')' in: " + s);
            for (const std::string &e :
                 splitStrip(rest.substr(1, close - 1), ','))
                params.push_back(ExprParser(e).parse());
            rest = strip(rest.substr(close + 1));
        }

        std::vector<Qubit> qubits;
        for (const std::string &tok : splitStrip(rest, ','))
            if (!tok.empty())
                qubits.push_back(
                    static_cast<Qubit>(parseRegIndex(tok, "q")));

        // qelib1 aliases: u3 == u and u1 == p map via the name table;
        // u2(phi, lambda) = u(pi/2, phi, lambda) needs rewriting.
        if (name == "u2") {
            if (params.size() != 2)
                throw QasmError("u2 expects 2 parameters");
            circuit.append({.kind = OpKind::U,
                            .qubits = qubits,
                            .params = {M_PI / 2.0, params[0],
                                       params[1]}});
            return;
        }
        const OpKind kind = kindFromName(name);
        circuit.append({.kind = kind, .qubits = qubits,
                        .params = params});
    };

    if (has_postselect) {
        // Re-parse line by line to preserve directive ordering.
        Circuit ordered(num_qubits, num_clbits, "qasm");
        circuit = ordered;
        std::istringstream lines(text);
        while (std::getline(lines, line)) {
            const auto directive = line.find("// qra:postselect");
            std::string body = line;
            if (directive != std::string::npos) {
                apply_statement(strip(line.substr(directive)));
                continue;
            }
            const auto comment = body.find("//");
            if (comment != std::string::npos)
                body = body.substr(0, comment);
            for (const std::string &piece : splitStrip(body, ';'))
                if (!piece.empty())
                    apply_statement(piece);
        }
    } else {
        for (const std::string &s : statements)
            apply_statement(s);
    }

    return circuit;
}

} // namespace qra
