/**
 * @file
 * The Circuit IR: an ordered list of Operations over a quantum and a
 * classical register, with a fluent builder interface.
 *
 * Qubits are little-endian everywhere in the library: qubit 0 is bit 0
 * of any basis index, and classical bit 0 is the rightmost character
 * of a rendered outcome bitstring (matching the paper's tables, which
 * print e.g. "q1q2" most-significant first).
 */

#ifndef QRA_CIRCUIT_CIRCUIT_HH
#define QRA_CIRCUIT_CIRCUIT_HH

#include <map>
#include <string>
#include <vector>

#include "circuit/gate.hh"
#include "math/types.hh"

namespace qra {

/** An ordered quantum program over n qubits and m classical bits. */
class Circuit
{
  public:
    /**
     * Create an empty circuit.
     *
     * @param num_qubits Size of the quantum register.
     * @param num_clbits Size of the classical register (default 0).
     * @param name Optional circuit name used in diagrams and QASM.
     */
    explicit Circuit(std::size_t num_qubits, std::size_t num_clbits = 0,
                     std::string name = "circuit");

    std::size_t numQubits() const { return numQubits_; }
    std::size_t numClbits() const { return numClbits_; }
    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

    /** Instruction sequence, in program order. */
    const std::vector<Operation> &ops() const { return ops_; }

    /** Number of instructions. */
    std::size_t size() const { return ops_.size(); }

    bool empty() const { return ops_.empty(); }

    // --- Builder interface -------------------------------------------

    Circuit &i(Qubit q);
    Circuit &x(Qubit q);
    Circuit &y(Qubit q);
    Circuit &z(Qubit q);
    Circuit &h(Qubit q);
    Circuit &s(Qubit q);
    Circuit &sdg(Qubit q);
    Circuit &t(Qubit q);
    Circuit &tdg(Qubit q);
    Circuit &sx(Qubit q);
    Circuit &rx(double theta, Qubit q);
    Circuit &ry(double theta, Qubit q);
    Circuit &rz(double theta, Qubit q);
    Circuit &p(double lambda, Qubit q);
    Circuit &u(double theta, double phi, double lambda, Qubit q);
    Circuit &cx(Qubit control, Qubit target);
    Circuit &cy(Qubit control, Qubit target);
    Circuit &cz(Qubit a, Qubit b);
    Circuit &swap(Qubit a, Qubit b);
    Circuit &ccx(Qubit c0, Qubit c1, Qubit target);
    Circuit &measure(Qubit q, Clbit c);
    /** Measure qubit i into classical bit i for all qubits. */
    Circuit &measureAll();
    Circuit &reset(Qubit q);
    /** Barrier over all qubits (scheduling fence). */
    Circuit &barrier();
    /** Barrier over a subset of qubits. */
    Circuit &barrier(const std::vector<Qubit> &qubits);
    /** Simulator-only: post-select @p q onto outcome @p value. */
    Circuit &postSelect(Qubit q, int value);

    /** Append a pre-built operation (validated). */
    Circuit &append(Operation op);

    /** Insert an operation at instruction index @p pos. */
    Circuit &insert(std::size_t pos, Operation op);

    /**
     * Append every instruction of @p other, mapping its qubit i to
     * qubit_map[i] and classical bit j to clbit_map[j].
     */
    Circuit &compose(const Circuit &other,
                     const std::vector<Qubit> &qubit_map,
                     const std::vector<Clbit> &clbit_map = {});

    /** Append @p other verbatim (registers must be large enough). */
    Circuit &compose(const Circuit &other);

    // --- Analysis -----------------------------------------------------

    /**
     * Circuit depth: the longest chain of instructions over shared
     * qubits/clbits. Barriers fence scheduling but add no depth.
     */
    std::size_t depth() const;

    /** Instruction count per mnemonic, e.g. {"cx": 3, "h": 2}. */
    std::map<std::string, std::size_t> countOps() const;

    /** Total count of 2+ qubit gates (the NISQ cost driver). */
    std::size_t twoQubitGateCount() const;

    /** True if any instruction is a Measure. */
    bool hasMeasurements() const;

    /**
     * Inverse circuit: unitary instructions reversed and inverted.
     * @throws CircuitError if the circuit contains non-unitary ops.
     */
    Circuit inverse() const;

    /**
     * A copy with all Measure/Barrier/PostSelect instructions removed
     * (used when checking unitary equivalence of transpiled circuits).
     */
    Circuit unitaryOnly() const;

    /**
     * Widen the circuit by appending fresh qubits/clbits at the top
     * indices. Existing instructions are unaffected.
     * @return Index of the first newly added qubit.
     */
    Qubit addQubits(std::size_t count);

    /** @return Index of the first newly added classical bit. */
    Clbit addClbits(std::size_t count);

    /** ASCII-art circuit diagram. */
    std::string draw() const;

    bool operator==(const Circuit &rhs) const;

    /**
     * Semantic 64-bit hash: register widths plus every instruction's
     * kind, operands, parameters, clbit wiring, and post-selection
     * value. Names and provenance labels are excluded, so two
     * circuits that execute identically hash identically. Used as
     * the preparation-cache key in the runtime JobQueue.
     */
    std::uint64_t hash() const;

  private:
    void validate(const Operation &op) const;

    std::size_t numQubits_;
    std::size_t numClbits_;
    std::string name_;
    std::vector<Operation> ops_;
};

} // namespace qra

#endif // QRA_CIRCUIT_CIRCUIT_HH
