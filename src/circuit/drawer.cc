#include "circuit/drawer.hh"

#include <algorithm>
#include <sstream>
#include <vector>

#include "circuit/circuit.hh"
#include "common/strings.hh"

namespace qra {

namespace {

/** Label drawn in the cell of a wire for a given operation. */
std::string
cellLabel(const Operation &op, std::size_t operand_index)
{
    switch (op.kind) {
      case OpKind::CX:
        return operand_index == 0 ? "*" : "X";
      case OpKind::CY:
        return operand_index == 0 ? "*" : "Y";
      case OpKind::CZ:
        return "*";
      case OpKind::Swap:
        return "x";
      case OpKind::CCX:
        return operand_index < 2 ? "*" : "X";
      case OpKind::Measure:
        return "M";
      case OpKind::Reset:
        return "|0>";
      case OpKind::Barrier:
        return ":";
      case OpKind::PostSelect:
        return op.postselectValue ? "P1" : "P0";
      case OpKind::RX: case OpKind::RY: case OpKind::RZ: case OpKind::P:
      {
        std::ostringstream os;
        os << opName(op.kind) << "(" << formatDouble(op.params[0], 2)
           << ")";
        return os.str();
      }
      case OpKind::U:
        return "U";
      default:
      {
        std::string name = opName(op.kind);
        std::transform(name.begin(), name.end(), name.begin(),
                       [](unsigned char c) {
                           return static_cast<char>(std::toupper(c));
                       });
        return name;
      }
    }
}

} // namespace

std::string
drawCircuit(const Circuit &circuit)
{
    const std::size_t nq = circuit.numQubits();

    // Assign each op to a column with the same rule depth() uses,
    // except barriers get their own column so they are visible.
    std::vector<std::size_t> level(nq, 0);
    std::vector<std::size_t> column(circuit.size(), 0);
    std::size_t num_cols = 0;
    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Operation &op = circuit.ops()[i];
        std::size_t col = 0;
        for (Qubit q : op.qubits)
            col = std::max(col, level[q]);
        column[i] = col;
        for (Qubit q : op.qubits)
            level[q] = col + 1;
        num_cols = std::max(num_cols, col + 1);
    }

    // Rows: even rows are qubit wires, odd rows are connector filler.
    const std::size_t num_rows = nq == 0 ? 0 : 2 * nq - 1;
    std::vector<std::vector<std::string>> cells(
        num_rows, std::vector<std::string>(num_cols));

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Operation &op = circuit.ops()[i];
        if (op.qubits.empty())
            continue;
        const std::size_t col = column[i];
        for (std::size_t k = 0; k < op.qubits.size(); ++k)
            cells[2 * op.qubits[k]][col] = cellLabel(op, k);

        // Vertical connector across the operand span.
        const auto [lo_it, hi_it] =
            std::minmax_element(op.qubits.begin(), op.qubits.end());
        if (*lo_it != *hi_it && op.kind != OpKind::Barrier) {
            for (Qubit q = *lo_it; q < *hi_it; ++q) {
                cells[2 * q + 1][col] = "|";
                if (cells[2 * q][col].empty() &&
                    std::find(op.qubits.begin(), op.qubits.end(), q) ==
                        op.qubits.end()) {
                    cells[2 * q][col] = "|";
                }
            }
            for (Qubit q = *lo_it + 1; q < *hi_it; ++q) {
                if (cells[2 * q][col].empty())
                    cells[2 * q][col] = "|";
            }
        }
    }

    // Column widths.
    std::vector<std::size_t> width(num_cols, 1);
    for (std::size_t c = 0; c < num_cols; ++c)
        for (std::size_t r = 0; r < num_rows; ++r)
            width[c] = std::max(width[c], cells[r][c].size());

    std::ostringstream os;
    os << circuit.name() << " (" << nq << " qubits, "
       << circuit.numClbits() << " clbits)\n";
    for (std::size_t r = 0; r < num_rows; ++r) {
        const bool wire = (r % 2 == 0);
        if (wire) {
            std::string label = "q" + std::to_string(r / 2) + ": ";
            os << label;
        } else {
            os << "    ";
        }
        const char fill = wire ? '-' : ' ';
        for (std::size_t c = 0; c < num_cols; ++c) {
            std::string cell = cells[r][c];
            if (cell.empty())
                cell = std::string(1, fill);
            // Centre the cell in the column.
            const std::size_t pad = width[c] - cell.size();
            const std::size_t left = pad / 2;
            os << fill << std::string(left, fill) << cell
               << std::string(pad - left, fill) << fill;
        }
        os << "\n";
    }
    return os.str();
}

std::string
Circuit::draw() const
{
    return drawCircuit(*this);
}

} // namespace qra
