/**
 * @file
 * OpenQASM 2.0 export and a subset importer.
 *
 * The importer accepts the dialect the exporter writes: one qreg, one
 * creg, the QRA gate set, `measure q[i] -> c[j]`, `reset`, `barrier`,
 * line comments, and parameter expressions over numbers and `pi` with
 * + - * / and parentheses.
 */

#ifndef QRA_CIRCUIT_QASM_HH
#define QRA_CIRCUIT_QASM_HH

#include <string>

#include "circuit/circuit.hh"

namespace qra {

/**
 * Serialise @p circuit as OpenQASM 2.0 text.
 *
 * PostSelect directives have no QASM equivalent and are emitted as
 * `// qra:postselect q[i] == v` comment lines, which the importer
 * understands.
 */
std::string toQasm(const Circuit &circuit);

/**
 * Parse OpenQASM 2.0 text into a Circuit.
 * @throws QasmError on any syntax or semantic problem.
 */
Circuit fromQasm(const std::string &text);

} // namespace qra

#endif // QRA_CIRCUIT_QASM_HH
