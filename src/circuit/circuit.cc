#include "circuit/circuit.hh"

#include <algorithm>
#include <cstring>

#include "common/error.hh"
#include "common/hash.hh"

namespace qra {

Circuit::Circuit(std::size_t num_qubits, std::size_t num_clbits,
                 std::string name)
    : numQubits_(num_qubits), numClbits_(num_clbits),
      name_(std::move(name))
{
    if (num_qubits == 0)
        throw CircuitError("a circuit needs at least one qubit");
    // Backends enforce their own limits (state vector 24, density
    // matrix 12); the IR itself only guards against absurd sizes.
    if (num_qubits > 4096)
        throw CircuitError("qubit count exceeds the IR limit of "
                           "4096");
    // Results pack the classical register into a 64-bit word; cap at
    // 63 so every mask/shift stays well-defined.
    if (num_clbits > 63)
        throw CircuitError("classical register exceeds the 63-bit "
                           "result limit");
}

void
Circuit::validate(const Operation &op) const
{
    const std::size_t expected = opNumQubits(op.kind);
    if (op.kind != OpKind::Barrier && op.qubits.size() != expected)
        throw CircuitError(std::string(opName(op.kind)) + " expects " +
                           std::to_string(expected) + " qubit(s), got " +
                           std::to_string(op.qubits.size()));
    if (op.params.size() != opNumParams(op.kind))
        throw CircuitError(std::string(opName(op.kind)) + " expects " +
                           std::to_string(opNumParams(op.kind)) +
                           " parameter(s)");
    for (Qubit q : op.qubits) {
        if (q >= numQubits_)
            throw CircuitError("qubit index " + std::to_string(q) +
                               " out of range (" +
                               std::to_string(numQubits_) + " qubits)");
    }
    // Multi-qubit operands must be distinct.
    for (std::size_t a = 0; a < op.qubits.size(); ++a)
        for (std::size_t b = a + 1; b < op.qubits.size(); ++b)
            if (op.qubits[a] == op.qubits[b])
                throw CircuitError(std::string(opName(op.kind)) +
                                   ": duplicate qubit operand q" +
                                   std::to_string(op.qubits[a]));
    if (op.kind == OpKind::Measure) {
        if (!op.clbit)
            throw CircuitError("measure requires a classical bit");
        if (*op.clbit >= numClbits_)
            throw CircuitError("classical bit index " +
                               std::to_string(*op.clbit) +
                               " out of range (" +
                               std::to_string(numClbits_) + " clbits)");
    }
    if (op.kind == OpKind::PostSelect &&
        op.postselectValue != 0 && op.postselectValue != 1) {
        throw CircuitError("postselect value must be 0 or 1");
    }
}

Circuit &
Circuit::append(Operation op)
{
    validate(op);
    ops_.push_back(std::move(op));
    return *this;
}

Circuit &
Circuit::insert(std::size_t pos, Operation op)
{
    if (pos > ops_.size())
        throw CircuitError("insert position out of range");
    validate(op);
    ops_.insert(ops_.begin() + static_cast<std::ptrdiff_t>(pos),
                std::move(op));
    return *this;
}

// Builder one-liners ---------------------------------------------------

Circuit &
Circuit::i(Qubit q)
{
    return append({.kind = OpKind::I, .qubits = {q}});
}

Circuit &
Circuit::x(Qubit q)
{
    return append({.kind = OpKind::X, .qubits = {q}});
}

Circuit &
Circuit::y(Qubit q)
{
    return append({.kind = OpKind::Y, .qubits = {q}});
}

Circuit &
Circuit::z(Qubit q)
{
    return append({.kind = OpKind::Z, .qubits = {q}});
}

Circuit &
Circuit::h(Qubit q)
{
    return append({.kind = OpKind::H, .qubits = {q}});
}

Circuit &
Circuit::s(Qubit q)
{
    return append({.kind = OpKind::S, .qubits = {q}});
}

Circuit &
Circuit::sdg(Qubit q)
{
    return append({.kind = OpKind::Sdg, .qubits = {q}});
}

Circuit &
Circuit::t(Qubit q)
{
    return append({.kind = OpKind::T, .qubits = {q}});
}

Circuit &
Circuit::tdg(Qubit q)
{
    return append({.kind = OpKind::Tdg, .qubits = {q}});
}

Circuit &
Circuit::sx(Qubit q)
{
    return append({.kind = OpKind::SX, .qubits = {q}});
}

Circuit &
Circuit::rx(double theta, Qubit q)
{
    return append({.kind = OpKind::RX, .qubits = {q}, .params = {theta}});
}

Circuit &
Circuit::ry(double theta, Qubit q)
{
    return append({.kind = OpKind::RY, .qubits = {q}, .params = {theta}});
}

Circuit &
Circuit::rz(double theta, Qubit q)
{
    return append({.kind = OpKind::RZ, .qubits = {q}, .params = {theta}});
}

Circuit &
Circuit::p(double lambda, Qubit q)
{
    return append({.kind = OpKind::P, .qubits = {q}, .params = {lambda}});
}

Circuit &
Circuit::u(double theta, double phi, double lambda, Qubit q)
{
    return append({.kind = OpKind::U, .qubits = {q},
                   .params = {theta, phi, lambda}});
}

Circuit &
Circuit::cx(Qubit control, Qubit target)
{
    return append({.kind = OpKind::CX, .qubits = {control, target}});
}

Circuit &
Circuit::cy(Qubit control, Qubit target)
{
    return append({.kind = OpKind::CY, .qubits = {control, target}});
}

Circuit &
Circuit::cz(Qubit a, Qubit b)
{
    return append({.kind = OpKind::CZ, .qubits = {a, b}});
}

Circuit &
Circuit::swap(Qubit a, Qubit b)
{
    return append({.kind = OpKind::Swap, .qubits = {a, b}});
}

Circuit &
Circuit::ccx(Qubit c0, Qubit c1, Qubit target)
{
    return append({.kind = OpKind::CCX, .qubits = {c0, c1, target}});
}

Circuit &
Circuit::measure(Qubit q, Clbit c)
{
    return append({.kind = OpKind::Measure, .qubits = {q}, .clbit = c});
}

Circuit &
Circuit::measureAll()
{
    if (numClbits_ < numQubits_)
        throw CircuitError("measureAll needs as many clbits as qubits");
    for (Qubit q = 0; q < numQubits_; ++q)
        measure(q, q);
    return *this;
}

Circuit &
Circuit::reset(Qubit q)
{
    return append({.kind = OpKind::Reset, .qubits = {q}});
}

Circuit &
Circuit::barrier()
{
    std::vector<Qubit> all(numQubits_);
    for (Qubit q = 0; q < numQubits_; ++q)
        all[q] = q;
    return barrier(all);
}

Circuit &
Circuit::barrier(const std::vector<Qubit> &qubits)
{
    return append({.kind = OpKind::Barrier, .qubits = qubits});
}

Circuit &
Circuit::postSelect(Qubit q, int value)
{
    Operation op{.kind = OpKind::PostSelect, .qubits = {q}};
    op.postselectValue = value;
    return append(std::move(op));
}

Circuit &
Circuit::compose(const Circuit &other, const std::vector<Qubit> &qubit_map,
                 const std::vector<Clbit> &clbit_map)
{
    if (qubit_map.size() != other.numQubits())
        throw CircuitError("compose: qubit map size mismatch");
    if (!clbit_map.empty() && clbit_map.size() != other.numClbits())
        throw CircuitError("compose: clbit map size mismatch");

    for (const Operation &op : other.ops_) {
        Operation mapped = op;
        for (auto &q : mapped.qubits)
            q = qubit_map.at(q);
        if (mapped.clbit) {
            if (clbit_map.empty())
                throw CircuitError("compose: measurement requires a "
                                   "clbit map");
            mapped.clbit = clbit_map.at(*mapped.clbit);
        }
        append(std::move(mapped));
    }
    return *this;
}

Circuit &
Circuit::compose(const Circuit &other)
{
    if (other.numQubits() > numQubits_ || other.numClbits() > numClbits_)
        throw CircuitError("compose: target circuit too small");
    for (const Operation &op : other.ops_)
        append(op);
    return *this;
}

std::size_t
Circuit::depth() const
{
    std::vector<std::size_t> qubit_level(numQubits_, 0);
    std::vector<std::size_t> clbit_level(numClbits_, 0);

    std::size_t depth = 0;
    for (const Operation &op : ops_) {
        // Barriers are scheduling fences, not time steps; depth
        // ignores them entirely (moment scheduling honours them).
        if (op.kind == OpKind::Barrier)
            continue;

        std::size_t level = 0;
        for (Qubit q : op.qubits)
            level = std::max(level, qubit_level[q]);
        if (op.clbit)
            level = std::max(level, clbit_level[*op.clbit]);

        const std::size_t next = level + 1;
        for (Qubit q : op.qubits)
            qubit_level[q] = next;
        if (op.clbit)
            clbit_level[*op.clbit] = next;
        depth = std::max(depth, next);
    }
    return depth;
}

std::map<std::string, std::size_t>
Circuit::countOps() const
{
    std::map<std::string, std::size_t> counts;
    for (const Operation &op : ops_)
        ++counts[opName(op.kind)];
    return counts;
}

std::size_t
Circuit::twoQubitGateCount() const
{
    std::size_t count = 0;
    for (const Operation &op : ops_)
        if (opIsUnitary(op.kind) && op.qubits.size() >= 2)
            ++count;
    return count;
}

bool
Circuit::hasMeasurements() const
{
    return std::any_of(ops_.begin(), ops_.end(), [](const Operation &op) {
        return op.kind == OpKind::Measure;
    });
}

Circuit
Circuit::inverse() const
{
    Circuit inv(numQubits_, numClbits_, name_ + "_inv");
    for (auto it = ops_.rbegin(); it != ops_.rend(); ++it) {
        if (it->kind == OpKind::Barrier) {
            inv.append(*it);
            continue;
        }
        inv.append(it->inverse());
    }
    return inv;
}

Circuit
Circuit::unitaryOnly() const
{
    Circuit out(numQubits_, numClbits_, name_);
    for (const Operation &op : ops_)
        if (opIsUnitary(op.kind))
            out.append(op);
    return out;
}

Qubit
Circuit::addQubits(std::size_t count)
{
    const Qubit first = static_cast<Qubit>(numQubits_);
    numQubits_ += count;
    if (numQubits_ > 4096)
        throw CircuitError("qubit count exceeds the IR limit of "
                           "4096");
    return first;
}

Clbit
Circuit::addClbits(std::size_t count)
{
    const Clbit first = static_cast<Clbit>(numClbits_);
    numClbits_ += count;
    if (numClbits_ > 63)
        throw CircuitError("classical register exceeds the 63-bit "
                           "result limit");
    return first;
}

bool
Circuit::operator==(const Circuit &rhs) const
{
    return numQubits_ == rhs.numQubits_ && numClbits_ == rhs.numClbits_ &&
           ops_ == rhs.ops_;
}

std::uint64_t
Circuit::hash() const
{
    // FNV-1a over the semantic content of the circuit.
    std::uint64_t h = kFnv1aOffset;
    auto mix = [&h](std::uint64_t value) {
        h = fnv1aMix64(h, value);
    };
    mix(numQubits_);
    mix(numClbits_);
    for (const Operation &op : ops_) {
        mix(static_cast<std::uint64_t>(op.kind));
        mix(op.qubits.size());
        for (const Qubit q : op.qubits)
            mix(static_cast<std::uint64_t>(q));
        mix(op.params.size());
        for (const double p : op.params) {
            std::uint64_t bits = 0;
            std::memcpy(&bits, &p, sizeof bits);
            mix(bits);
        }
        mix(op.clbit ? 1 + static_cast<std::uint64_t>(*op.clbit) : 0);
        mix(static_cast<std::uint64_t>(op.postselectValue));
    }
    return h;
}

} // namespace qra
