/**
 * @file
 * Moment scheduling: partition a circuit into layers of instructions
 * that act on disjoint qubits. The noisy simulators use moments to
 * apply relaxation noise to *idle* qubits for the duration of each
 * layer, which is what makes the ibmqx4 model's timing realistic.
 */

#ifndef QRA_CIRCUIT_SCHEDULE_HH
#define QRA_CIRCUIT_SCHEDULE_HH

#include <cstddef>
#include <functional>
#include <vector>

#include "circuit/circuit.hh"

namespace qra {

/** One layer of simultaneously executable instructions. */
struct Moment
{
    /** Indices into Circuit::ops() of the instructions in this layer. */
    std::vector<std::size_t> opIndices;
};

/**
 * ASAP moment partition of @p circuit.
 *
 * Instructions are greedily packed into the earliest moment where all
 * their operands are free. Barriers close every open moment (they
 * synchronise all listed qubits) and do not appear in the output.
 */
std::vector<Moment> computeMoments(const Circuit &circuit);

/** Callback mapping an operation to its duration in nanoseconds. */
using DurationFn = std::function<double(const Operation &)>;

/** A moment annotated with its wall-clock span. */
struct TimedMoment
{
    std::vector<std::size_t> opIndices;
    double startNs = 0.0;
    /** Duration of the slowest instruction in the moment. */
    double durationNs = 0.0;
};

/**
 * Timed ASAP schedule: each moment's duration is the maximum operand
 * duration within it, and start times accumulate.
 */
std::vector<TimedMoment> computeTimedMoments(const Circuit &circuit,
                                             const DurationFn &duration);

/** Total wall-clock time of the timed schedule, in nanoseconds. */
double scheduleDuration(const std::vector<TimedMoment> &moments);

} // namespace qra

#endif // QRA_CIRCUIT_SCHEDULE_HH
