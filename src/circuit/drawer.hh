/**
 * @file
 * ASCII circuit rendering. One text row per qubit wire, with filler
 * rows carrying the vertical connectors of multi-qubit gates.
 */

#ifndef QRA_CIRCUIT_DRAWER_HH
#define QRA_CIRCUIT_DRAWER_HH

#include <string>

namespace qra {

class Circuit;

/** Render @p circuit as an ASCII diagram. */
std::string drawCircuit(const Circuit &circuit);

} // namespace qra

#endif // QRA_CIRCUIT_DRAWER_HH
