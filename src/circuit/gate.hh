/**
 * @file
 * Gate vocabulary of the circuit IR.
 *
 * An Operation is one instruction in a circuit: a unitary gate, a
 * measurement, a reset, a barrier, or a simulator-only post-selection
 * directive (used to reproduce the paper's QUIRK experiments).
 */

#ifndef QRA_CIRCUIT_GATE_HH
#define QRA_CIRCUIT_GATE_HH

#include <optional>
#include <string>
#include <vector>

#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {

/** Every instruction kind the IR understands. */
enum class OpKind
{
    // Single-qubit unitaries.
    I, X, Y, Z, H, S, Sdg, T, Tdg, SX,
    RX, RY, RZ, P, U,
    // Multi-qubit unitaries.
    CX, CY, CZ, Swap, CCX,
    // Non-unitary instructions.
    Measure, Reset, Barrier,
    // Simulator directive: keep only the branch where the qubit reads
    // the given value (QUIRK's post-select display).
    PostSelect,
};

/** Number of qubit operands @p kind expects. */
std::size_t opNumQubits(OpKind kind);

/** Number of angle parameters @p kind expects. */
std::size_t opNumParams(OpKind kind);

/** True for instructions with a unitary matrix representation. */
bool opIsUnitary(OpKind kind);

/** Lower-case mnemonic, matching OpenQASM where one exists. */
const char *opName(OpKind kind);

/** Inverse of a parameter-free unitary, if it is itself in the set. */
std::optional<OpKind> opSelfContainedInverse(OpKind kind);

/** One instruction: kind + qubit operands + optional params/clbit. */
struct Operation
{
    OpKind kind;

    /** Qubit operands; ordering is significant (control first). */
    std::vector<Qubit> qubits;

    /** Angle parameters for RX/RY/RZ/P/U. */
    std::vector<double> params;

    /** Destination classical bit (Measure only). */
    std::optional<Clbit> clbit;

    /** Post-selected outcome, 0 or 1 (PostSelect only). */
    int postselectValue = 0;

    /** Optional provenance label (e.g. which assertion inserted it). */
    std::string label;

    /**
     * Unitary matrix of this operation in the local little-endian
     * qubit order (bit i of the matrix index = qubits[i]).
     * @throws CircuitError for non-unitary instructions.
     */
    Matrix matrix() const;

    /** Inverse operation. @throws CircuitError if non-unitary. */
    Operation inverse() const;

    /** Human-readable rendering, e.g. "cx q1, q0". */
    std::string str() const;

    bool operator==(const Operation &rhs) const;
};

} // namespace qra

#endif // QRA_CIRCUIT_GATE_HH
