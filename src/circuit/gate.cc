#include "circuit/gate.hh"

#include <sstream>

#include "common/error.hh"
#include "math/gates.hh"

namespace qra {

std::size_t
opNumQubits(OpKind kind)
{
    switch (kind) {
      case OpKind::I: case OpKind::X: case OpKind::Y: case OpKind::Z:
      case OpKind::H: case OpKind::S: case OpKind::Sdg: case OpKind::T:
      case OpKind::Tdg: case OpKind::SX: case OpKind::RX: case OpKind::RY:
      case OpKind::RZ: case OpKind::P: case OpKind::U:
      case OpKind::Measure: case OpKind::Reset: case OpKind::PostSelect:
        return 1;
      case OpKind::CX: case OpKind::CY: case OpKind::CZ: case OpKind::Swap:
        return 2;
      case OpKind::CCX:
        return 3;
      case OpKind::Barrier:
        return 0; // variadic: zero or more operands
    }
    QRA_PANIC("unhandled OpKind");
}

std::size_t
opNumParams(OpKind kind)
{
    switch (kind) {
      case OpKind::RX: case OpKind::RY: case OpKind::RZ: case OpKind::P:
        return 1;
      case OpKind::U:
        return 3;
      default:
        return 0;
    }
}

bool
opIsUnitary(OpKind kind)
{
    switch (kind) {
      case OpKind::Measure: case OpKind::Reset: case OpKind::Barrier:
      case OpKind::PostSelect:
        return false;
      default:
        return true;
    }
}

const char *
opName(OpKind kind)
{
    switch (kind) {
      case OpKind::I: return "id";
      case OpKind::X: return "x";
      case OpKind::Y: return "y";
      case OpKind::Z: return "z";
      case OpKind::H: return "h";
      case OpKind::S: return "s";
      case OpKind::Sdg: return "sdg";
      case OpKind::T: return "t";
      case OpKind::Tdg: return "tdg";
      case OpKind::SX: return "sx";
      case OpKind::RX: return "rx";
      case OpKind::RY: return "ry";
      case OpKind::RZ: return "rz";
      case OpKind::P: return "p";
      case OpKind::U: return "u";
      case OpKind::CX: return "cx";
      case OpKind::CY: return "cy";
      case OpKind::CZ: return "cz";
      case OpKind::Swap: return "swap";
      case OpKind::CCX: return "ccx";
      case OpKind::Measure: return "measure";
      case OpKind::Reset: return "reset";
      case OpKind::Barrier: return "barrier";
      case OpKind::PostSelect: return "postselect";
    }
    QRA_PANIC("unhandled OpKind");
}

std::optional<OpKind>
opSelfContainedInverse(OpKind kind)
{
    switch (kind) {
      case OpKind::I: case OpKind::X: case OpKind::Y: case OpKind::Z:
      case OpKind::H: case OpKind::CX: case OpKind::CY: case OpKind::CZ:
      case OpKind::Swap: case OpKind::CCX:
        return kind; // self-inverse
      case OpKind::S: return OpKind::Sdg;
      case OpKind::Sdg: return OpKind::S;
      case OpKind::T: return OpKind::Tdg;
      case OpKind::Tdg: return OpKind::T;
      default:
        return std::nullopt;
    }
}

Matrix
Operation::matrix() const
{
    switch (kind) {
      case OpKind::I: return gates::i1();
      case OpKind::X: return gates::x();
      case OpKind::Y: return gates::y();
      case OpKind::Z: return gates::z();
      case OpKind::H: return gates::h();
      case OpKind::S: return gates::s();
      case OpKind::Sdg: return gates::sdg();
      case OpKind::T: return gates::t();
      case OpKind::Tdg: return gates::tdg();
      case OpKind::SX: return gates::sx();
      case OpKind::RX: return gates::rx(params.at(0));
      case OpKind::RY: return gates::ry(params.at(0));
      case OpKind::RZ: return gates::rz(params.at(0));
      case OpKind::P: return gates::p(params.at(0));
      case OpKind::U:
        return gates::u(params.at(0), params.at(1), params.at(2));
      case OpKind::CX: return gates::cx();
      case OpKind::CY: return gates::cy();
      case OpKind::CZ: return gates::cz();
      case OpKind::Swap: return gates::swap();
      case OpKind::CCX: return gates::ccx();
      default:
        throw CircuitError(std::string("operation '") + opName(kind) +
                           "' has no unitary matrix");
    }
}

Operation
Operation::inverse() const
{
    if (!opIsUnitary(kind))
        throw CircuitError(std::string("cannot invert non-unitary '") +
                           opName(kind) + "'");

    Operation inv = *this;
    if (auto self = opSelfContainedInverse(kind)) {
        inv.kind = *self;
        return inv;
    }

    switch (kind) {
      case OpKind::SX:
        // SX^-1 = SX^3; express as RX(-pi/2) up to global phase.
        inv.kind = OpKind::RX;
        inv.params = {-M_PI / 2.0};
        return inv;
      case OpKind::RX: case OpKind::RY: case OpKind::RZ: case OpKind::P:
        inv.params = {-params.at(0)};
        return inv;
      case OpKind::U:
        // U(t, p, l)^-1 = U(-t, -l, -p).
        inv.params = {-params.at(0), -params.at(2), -params.at(1)};
        return inv;
      default:
        QRA_PANIC("inverse: unhandled unitary kind");
    }
}

std::string
Operation::str() const
{
    std::ostringstream os;
    os << opName(kind);
    if (!params.empty()) {
        os << "(";
        for (std::size_t i = 0; i < params.size(); ++i) {
            if (i)
                os << ", ";
            os << params[i];
        }
        os << ")";
    }
    for (std::size_t i = 0; i < qubits.size(); ++i)
        os << (i ? ", q" : " q") << qubits[i];
    if (kind == OpKind::Measure && clbit)
        os << " -> c" << *clbit;
    if (kind == OpKind::PostSelect)
        os << " == " << postselectValue;
    return os.str();
}

bool
Operation::operator==(const Operation &rhs) const
{
    return kind == rhs.kind && qubits == rhs.qubits &&
           params == rhs.params && clbit == rhs.clbit &&
           postselectValue == rhs.postselectValue;
}

} // namespace qra
