#include "circuit/schedule.hh"

#include <algorithm>

namespace qra {

std::vector<Moment>
computeMoments(const Circuit &circuit)
{
    std::vector<std::size_t> level(circuit.numQubits(), 0);
    std::vector<Moment> moments;

    for (std::size_t i = 0; i < circuit.size(); ++i) {
        const Operation &op = circuit.ops()[i];

        if (op.kind == OpKind::Barrier) {
            // Synchronise all listed qubits to the same level.
            std::size_t sync = 0;
            for (Qubit q : op.qubits)
                sync = std::max(sync, level[q]);
            for (Qubit q : op.qubits)
                level[q] = sync;
            continue;
        }

        std::size_t slot = 0;
        for (Qubit q : op.qubits)
            slot = std::max(slot, level[q]);
        if (slot >= moments.size())
            moments.resize(slot + 1);
        moments[slot].opIndices.push_back(i);
        for (Qubit q : op.qubits)
            level[q] = slot + 1;
    }
    return moments;
}

std::vector<TimedMoment>
computeTimedMoments(const Circuit &circuit, const DurationFn &duration)
{
    const std::vector<Moment> moments = computeMoments(circuit);
    std::vector<TimedMoment> timed;
    timed.reserve(moments.size());

    double clock = 0.0;
    for (const Moment &m : moments) {
        TimedMoment tm;
        tm.opIndices = m.opIndices;
        tm.startNs = clock;
        for (std::size_t idx : m.opIndices)
            tm.durationNs =
                std::max(tm.durationNs, duration(circuit.ops()[idx]));
        clock += tm.durationNs;
        timed.push_back(std::move(tm));
    }
    return timed;
}

double
scheduleDuration(const std::vector<TimedMoment> &moments)
{
    if (moments.empty())
        return 0.0;
    const TimedMoment &last = moments.back();
    return last.startNs + last.durationNs;
}

} // namespace qra
