#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/error.hh"

namespace qra {
namespace obs {

namespace detail {
std::atomic<bool> gMetricsEnabled{false};
std::atomic<bool> gTracingEnabled{false};
} // namespace detail

void
setMetricsEnabled(bool enabled)
{
    detail::gMetricsEnabled.store(enabled, std::memory_order_relaxed);
}

void
setTracingEnabled(bool enabled)
{
    detail::gTracingEnabled.store(enabled, std::memory_order_relaxed);
}

namespace {

/** Per-histogram aggregate slots appended after the buckets. */
constexpr std::size_t kSumSlot = 0;
constexpr std::size_t kMinSlot = 1;
constexpr std::size_t kMaxSlot = 2;
constexpr std::size_t kAggregateSlots = 3;

/** Default latency bounds: powers of 4 from 1us to ~17s, in ns. */
std::vector<std::uint64_t>
defaultLatencyBounds()
{
    std::vector<std::uint64_t> bounds;
    for (std::uint64_t b = 1000; b <= 64'000'000'000ull; b *= 4)
        bounds.push_back(b);
    return bounds;
}

std::uint64_t
nextRegistryId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/**
 * The calling thread's cached (registry id -> shard) mapping. One
 * entry per thread: a thread that alternates between registries
 * (tests) falls back to the registry's thread-id map, never losing
 * its existing shard.
 */
struct TlsShardRef
{
    std::uint64_t registryId = 0;
    void *shard = nullptr;
};
thread_local TlsShardRef tls_shard;

} // namespace

MetricsRegistry::MetricsRegistry() : registryId_(nextRegistryId())
{
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry;
    return registry;
}

CounterHandle
MetricsRegistry::counter(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < counterNames_.size(); ++i)
        if (counterNames_[i] == name)
            return {static_cast<std::uint32_t>(i)};
    if (counterNames_.size() >= kMaxCounters)
        throw ValueError("MetricsRegistry: counter capacity (" +
                         std::to_string(kMaxCounters) + ") exhausted");
    counterNames_.emplace_back(name);
    return {static_cast<std::uint32_t>(counterNames_.size() - 1)};
}

GaugeHandle
MetricsRegistry::gauge(std::string_view name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < gaugeNames_.size(); ++i)
        if (gaugeNames_[i] == name)
            return {static_cast<std::uint32_t>(i)};
    if (gaugeNames_.size() >= kMaxGauges)
        throw ValueError("MetricsRegistry: gauge capacity (" +
                         std::to_string(kMaxGauges) + ") exhausted");
    gaugeNames_.emplace_back(name);
    return {static_cast<std::uint32_t>(gaugeNames_.size() - 1)};
}

HistogramHandle
MetricsRegistry::histogram(std::string_view name,
                           std::vector<std::uint64_t> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < histogramCount_; ++i)
        if (histograms_[i].name == name)
            return {static_cast<std::uint32_t>(i)};
    if (bounds.empty())
        bounds = defaultLatencyBounds();
    if (!std::is_sorted(bounds.begin(), bounds.end()))
        throw ValueError("MetricsRegistry: histogram bounds must be "
                         "ascending");
    const std::size_t slots =
        bounds.size() + 1 + kAggregateSlots;
    if (histogramCount_ >= kMaxHistograms ||
        slotsUsed_ + slots > kMaxHistogramSlots)
        throw ValueError(
            "MetricsRegistry: histogram capacity exhausted");
    HistogramDef &def = histograms_[histogramCount_];
    def.name = std::string(name);
    def.bounds = std::move(bounds);
    def.slot0 = slotsUsed_;
    slotsUsed_ += slots;
    return {static_cast<std::uint32_t>(histogramCount_++)};
}

MetricsRegistry::Shard &
MetricsRegistry::localShard()
{
    if (tls_shard.registryId == registryId_)
        return *static_cast<Shard *>(tls_shard.shard);
    return localShardSlow();
}

MetricsRegistry::Shard &
MetricsRegistry::localShardSlow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Shard *&slot = shardByThread_[std::this_thread::get_id()];
    if (slot == nullptr) {
        shards_.push_back(std::make_unique<Shard>());
        slot = shards_.back().get();
    }
    tls_shard.registryId = registryId_;
    tls_shard.shard = slot;
    return *slot;
}

void
MetricsRegistry::add(CounterHandle handle, std::uint64_t n)
{
    if (handle.id == kInvalidMetric)
        return;
    localShard().counters[handle.id].fetch_add(
        n, std::memory_order_relaxed);
}

void
MetricsRegistry::set(GaugeHandle handle, double value)
{
    if (handle.id == kInvalidMetric)
        return;
    gaugeBits_[handle.id].store(std::bit_cast<std::uint64_t>(value),
                                std::memory_order_relaxed);
}

void
MetricsRegistry::observe(HistogramHandle handle, std::uint64_t value)
{
    if (handle.id == kInvalidMetric)
        return;
    Shard &shard = localShard();
    // The definition was fully written (under the lock) before its
    // handle escaped, it never moves (fixed-capacity array) and is
    // never mutated after publication — lock-free read.
    const HistogramDef &def = histograms_[handle.id];
    const std::vector<std::uint64_t> &bounds = def.bounds;
    // Inclusive upper bounds: value <= bounds[i] -> bucket i; above
    // the last bound -> overflow bucket.
    std::size_t bucket = std::lower_bound(bounds.begin(), bounds.end(),
                                          value) -
                         bounds.begin();
    const std::size_t base = def.slot0;
    shard.slots[base + bucket].fetch_add(1,
                                         std::memory_order_relaxed);
    const std::size_t agg = base + bounds.size() + 1;
    shard.slots[agg + kSumSlot].fetch_add(value,
                                          std::memory_order_relaxed);
    // Only the owning thread writes its shard's min/max, so a
    // load-compare-store without CAS is race-free.
    const std::uint64_t encoded = value + 1; // 0 = unset
    const std::uint64_t cur_min =
        shard.slots[agg + kMinSlot].load(std::memory_order_relaxed);
    if (cur_min == 0 || encoded < cur_min)
        shard.slots[agg + kMinSlot].store(encoded,
                                          std::memory_order_relaxed);
    const std::uint64_t cur_max =
        shard.slots[agg + kMaxSlot].load(std::memory_order_relaxed);
    if (cur_max == 0 || encoded > cur_max)
        shard.slots[agg + kMaxSlot].store(encoded,
                                          std::memory_order_relaxed);
}

std::uint64_t
MetricsRegistry::counterValue(CounterHandle handle) const
{
    if (handle.id == kInvalidMetric)
        return 0;
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->counters[handle.id].load(
            std::memory_order_relaxed);
    return total;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    for (std::size_t i = 0; i < counterNames_.size(); ++i) {
        std::uint64_t total = 0;
        for (const auto &shard : shards_)
            total += shard->counters[i].load(
                std::memory_order_relaxed);
        snap.counters[counterNames_[i]] = total;
    }
    for (std::size_t i = 0; i < gaugeNames_.size(); ++i)
        snap.gauges[gaugeNames_[i]] = std::bit_cast<double>(
            gaugeBits_[i].load(std::memory_order_relaxed));
    for (std::size_t h = 0; h < histogramCount_; ++h) {
        const HistogramDef &def = histograms_[h];
        HistogramSnapshot hist;
        hist.bounds = def.bounds;
        hist.buckets.assign(def.bounds.size() + 1, 0);
        const std::size_t agg = def.slot0 + def.bounds.size() + 1;
        std::uint64_t min_encoded = 0;
        std::uint64_t max_encoded = 0;
        for (const auto &shard : shards_) {
            for (std::size_t b = 0; b < hist.buckets.size(); ++b)
                hist.buckets[b] += shard->slots[def.slot0 + b].load(
                    std::memory_order_relaxed);
            hist.sum += shard->slots[agg + kSumSlot].load(
                std::memory_order_relaxed);
            const std::uint64_t smin = shard->slots[agg + kMinSlot]
                                           .load(std::memory_order_relaxed);
            if (smin != 0 &&
                (min_encoded == 0 || smin < min_encoded))
                min_encoded = smin;
            const std::uint64_t smax = shard->slots[agg + kMaxSlot]
                                           .load(std::memory_order_relaxed);
            if (smax > max_encoded)
                max_encoded = smax;
        }
        for (const std::uint64_t b : hist.buckets)
            hist.count += b;
        if (hist.count > 0) {
            hist.min = min_encoded - 1;
            hist.max = max_encoded - 1;
        }
        snap.histograms[def.name] = std::move(hist);
    }
    return snap;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        for (auto &c : shard->counters)
            c.store(0, std::memory_order_relaxed);
        for (auto &s : shard->slots)
            s.store(0, std::memory_order_relaxed);
    }
    for (auto &g : gaugeBits_)
        g.store(0, std::memory_order_relaxed);
}

namespace {

void
appendJsonEscaped(std::ostringstream &os, const std::string &s)
{
    for (const char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
}

} // namespace

std::string
MetricsSnapshot::toJson() const
{
    std::ostringstream os;
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        appendJsonEscaped(os, name);
        os << "\":" << value;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        appendJsonEscaped(os, name);
        os << "\":" << value;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, hist] : histograms) {
        if (!first)
            os << ",";
        first = false;
        os << "\"";
        appendJsonEscaped(os, name);
        os << "\":{\"bounds\":[";
        for (std::size_t i = 0; i < hist.bounds.size(); ++i)
            os << (i > 0 ? "," : "") << hist.bounds[i];
        os << "],\"buckets\":[";
        for (std::size_t i = 0; i < hist.buckets.size(); ++i)
            os << (i > 0 ? "," : "") << hist.buckets[i];
        os << "],\"count\":" << hist.count << ",\"sum\":" << hist.sum
           << ",\"min\":" << hist.min << ",\"max\":" << hist.max
           << "}";
    }
    os << "}}";
    return os.str();
}

std::string
MetricsSnapshot::str() const
{
    std::ostringstream os;
    os << "counters:\n";
    for (const auto &[name, value] : counters)
        os << "  " << name << " = " << value << "\n";
    os << "gauges:\n";
    for (const auto &[name, value] : gauges)
        os << "  " << name << " = " << value << "\n";
    os << "histograms:\n";
    for (const auto &[name, hist] : histograms) {
        os << "  " << name << ": count=" << hist.count
           << " sum=" << hist.sum;
        if (hist.count > 0)
            os << " min=" << hist.min << " mean=" << hist.mean()
               << " max=" << hist.max;
        os << "\n";
    }
    return os.str();
}

} // namespace obs
} // namespace qra
