/**
 * @file
 * MetricsRegistry: named counters, gauges, and histograms with
 * lock-free thread-local shards and a deterministic snapshot.
 *
 * The registry is the runtime's one metrics sink. Components register
 * a metric once (find-or-register by name, returning a small handle)
 * and update it through the handle on their hot paths. Updates go to
 * a per-thread shard — a fixed-capacity array of relaxed atomics the
 * owning thread increments without locks — and a snapshot merges all
 * shards. Counters and histogram buckets are integer sums, so the
 * merged totals are identical no matter how work was distributed
 * across threads: metrics are deterministic under any thread count,
 * exactly like the engine's counts. Gauges are instantaneous
 * last-write-wins values (a shots/sec reading, a queue depth) and
 * make no determinism claim.
 *
 * Cost model: every update helper first reads one relaxed atomic
 * (`metricsEnabled()`); when telemetry is off that branch is the
 * entire cost — no locks, no allocation, no clock reads. When on, an
 * update is one TLS lookup plus one relaxed atomic add.
 */

#ifndef QRA_OBS_METRICS_HH
#define QRA_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

namespace qra {
namespace obs {

namespace detail {
/** Process-wide telemetry switches (relaxed reads on hot paths). */
extern std::atomic<bool> gMetricsEnabled;
extern std::atomic<bool> gTracingEnabled;
} // namespace detail

/** True when metric updates are being recorded. */
inline bool
metricsEnabled()
{
    return detail::gMetricsEnabled.load(std::memory_order_relaxed);
}

/** Turn metric recording on or off (off = zero-cost updates). */
void setMetricsEnabled(bool enabled);

/** True when trace spans are being recorded (see trace.hh). */
inline bool
tracingEnabled()
{
    return detail::gTracingEnabled.load(std::memory_order_relaxed);
}

/** Turn span recording on or off (off = zero-cost spans). */
void setTracingEnabled(bool enabled);

/** True when either metrics or tracing is on. */
inline bool
anyEnabled()
{
    return metricsEnabled() || tracingEnabled();
}

/** Invalid-handle sentinel. */
inline constexpr std::uint32_t kInvalidMetric = 0xffffffffu;

/** Handle to a registered counter (an index; cheap to copy). */
struct CounterHandle
{
    std::uint32_t id = kInvalidMetric;
};

/** Handle to a registered gauge. */
struct GaugeHandle
{
    std::uint32_t id = kInvalidMetric;
};

/** Handle to a registered histogram. */
struct HistogramHandle
{
    std::uint32_t id = kInvalidMetric;
};

/** Merged state of one histogram at snapshot time. */
struct HistogramSnapshot
{
    /** Inclusive upper bounds; a final +inf bucket is implicit. */
    std::vector<std::uint64_t> bounds;
    /** bounds.size() + 1 bucket counts. */
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    /** Integer sum of observed values (deterministic merge). */
    std::uint64_t sum = 0;
    /** Valid only when count > 0. */
    std::uint64_t min = 0;
    std::uint64_t max = 0;

    double mean() const
    {
        return count == 0 ? 0.0
                          : static_cast<double>(sum) /
                                static_cast<double>(count);
    }
};

/** Deterministic point-in-time view of every registered metric. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Single JSON object (the --metrics=FILE schema). */
    std::string toJson() const;

    /** Human-readable table for terminal output. */
    std::string str() const;
};

/** Named-metric registry with thread-local shards (see file doc). */
class MetricsRegistry
{
  public:
    static constexpr std::size_t kMaxCounters = 128;
    static constexpr std::size_t kMaxGauges = 32;
    static constexpr std::size_t kMaxHistograms = 32;
    /** Total bucket/aggregate slots shared by all histograms. */
    static constexpr std::size_t kMaxHistogramSlots = 1024;

    MetricsRegistry();
    ~MetricsRegistry() = default;

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** The process-wide registry every instrumented component uses. */
    static MetricsRegistry &global();

    /**
     * Find or register a counter. Registration is idempotent by name
     * and cheap enough for function-local static handles.
     * @throws ValueError once kMaxCounters distinct names exist.
     */
    CounterHandle counter(std::string_view name);

    /** Find or register a gauge. */
    GaugeHandle gauge(std::string_view name);

    /**
     * Find or register a histogram with inclusive upper @p bounds
     * (ascending; values above the last bound land in an overflow
     * bucket). Empty bounds = the default latency scale, powers of 4
     * from 1us to ~17s in nanoseconds. Re-registration with different
     * bounds keeps the first definition.
     */
    HistogramHandle histogram(std::string_view name,
                              std::vector<std::uint64_t> bounds = {});

    /** Add @p n to a counter (thread-local shard, lock-free). */
    void add(CounterHandle handle, std::uint64_t n = 1);

    /** Set a gauge to @p value (last write wins). */
    void set(GaugeHandle handle, double value);

    /** Record @p value into a histogram's thread-local shard. */
    void observe(HistogramHandle handle, std::uint64_t value);

    /** Merged current value of one counter (thin read). */
    std::uint64_t counterValue(CounterHandle handle) const;

    /**
     * Merge every shard into a deterministic snapshot. Safe to call
     * concurrently with updates (relaxed reads), but values are only
     * guaranteed complete once the instrumented work has quiesced.
     */
    MetricsSnapshot snapshot() const;

    /** Zero every value; definitions stay registered. Tests only. */
    void reset();

  private:
    /** One thread's slice of every counter/histogram. */
    struct Shard
    {
        std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
        /**
         * Histogram slots: per histogram, bucket counts followed by
         * sum and (value+1)-encoded min/max (0 = unset), at the
         * offset the registry assigned.
         */
        std::array<std::atomic<std::uint64_t>, kMaxHistogramSlots>
            slots{};
    };

    struct HistogramDef
    {
        std::string name;
        std::vector<std::uint64_t> bounds;
        /** First slot of this histogram's block in every shard. */
        std::size_t slot0 = 0;
    };

    /** This thread's shard, creating and caching it on first use. */
    Shard &localShard();
    Shard &localShardSlow();

    mutable std::mutex mutex_;
    std::vector<std::string> counterNames_;
    std::vector<std::string> gaugeNames_;
    /**
     * Fixed-capacity so a racing observe() can read a published
     * definition without the lock: entries are written once, under
     * the lock, before their handle escapes, and never move.
     */
    std::array<HistogramDef, kMaxHistograms> histograms_;
    std::size_t histogramCount_ = 0;
    std::size_t slotsUsed_ = 0;
    std::array<std::atomic<std::uint64_t>, kMaxGauges> gaugeBits_{};
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unordered_map<std::thread::id, Shard *> shardByThread_;
    /** Unique per registry instance; keys the TLS shard cache. */
    std::uint64_t registryId_;
};

/** Add to a counter of the global registry iff metrics are on. */
inline void
count(CounterHandle handle, std::uint64_t n = 1)
{
    if (metricsEnabled())
        MetricsRegistry::global().add(handle, n);
}

/** Set a gauge of the global registry iff metrics are on. */
inline void
setGauge(GaugeHandle handle, double value)
{
    if (metricsEnabled())
        MetricsRegistry::global().set(handle, value);
}

/** Observe into a histogram of the global registry iff metrics on. */
inline void
observe(HistogramHandle handle, std::uint64_t value)
{
    if (metricsEnabled())
        MetricsRegistry::global().observe(handle, value);
}

} // namespace obs
} // namespace qra

#endif // QRA_OBS_METRICS_HH
