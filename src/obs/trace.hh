/**
 * @file
 * Tracer: per-job span trees recorded into per-thread ring buffers,
 * exportable as Chrome trace-event JSON (loads in Perfetto /
 * chrome://tracing) and as a JSON-lines event stream.
 *
 * Events are fixed-size POD records — names and argument keys are
 * copied into inline buffers, so recording never allocates. Each
 * thread appends to its own preallocated ring (oldest events are
 * overwritten when it fills; the drop count is reported), and export
 * merges all rings sorted by timestamp. Timestamps come from one
 * steady clock epoch shared by every thread, so per-thread event
 * streams are monotonic and cross-thread spans line up.
 *
 * Span vocabulary used by the runtime (categories in parentheses):
 *   prepare (queue)        one JobQueue preparation (cache miss path)
 *   pass:<name> (compile)  one compile-pass execution
 *   shard (engine)         one shard's backend run, args shots/wait_ns
 *   wave (engine, async)   one adaptive wave, begin at launch
 *   wave_merge (engine)    shard-order merge of a finished wave
 *   stopping_eval (engine) stopping-rule evaluation after a wave
 *   sampled_run /
 *   pershot_run (sim)      one simulator invocation
 *
 * Recording is guarded by obs::tracingEnabled(): a disabled span is
 * one relaxed atomic load and nothing else.
 */

#ifndef QRA_OBS_TRACE_HH
#define QRA_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.hh" // tracingEnabled()

namespace qra {
namespace obs {

/** One span/instant argument: a short key and a numeric value. */
using TraceArg = std::pair<const char *, std::uint64_t>;
using TraceArgs = std::initializer_list<TraceArg>;

/** Fixed-size trace record (POD; recording never allocates). */
struct TraceEvent
{
    static constexpr std::size_t kNameLen = 40;
    static constexpr std::size_t kCatLen = 12;
    static constexpr std::size_t kKeyLen = 12;

    char name[kNameLen] = {};
    char cat[kCatLen] = {};
    /** Chrome phase: X complete, i instant, b/e async begin/end. */
    char ph = 'X';
    std::uint32_t tid = 0;
    /** Nanoseconds since the tracer epoch. */
    std::uint64_t tsNs = 0;
    /** Complete events only. */
    std::uint64_t durNs = 0;
    /** Async events only: begin/end pairs share an id. */
    std::uint64_t id = 0;
    char argKey[2][kKeyLen] = {{}, {}};
    std::uint64_t argVal[2] = {0, 0};
    std::uint8_t numArgs = 0;
};

/** Per-thread ring-buffer trace recorder (see file doc). */
class Tracer
{
  public:
    using Clock = std::chrono::steady_clock;

    static constexpr std::size_t kDefaultRingCapacity = 16384;

    /** Smallest accepted ring capacity: below this a ring thrashes
        (wraps within a single job) and drop accounting degenerates.
        setRingCapacity clamps up to it, with a warning. */
    static constexpr std::size_t kMinRingCapacity = 16;

    Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** The process-wide tracer every instrumented component uses. */
    static Tracer &global();

    /**
     * Events retained per thread before the ring wraps. Takes effect
     * for rings created after the call; existing rings keep their
     * size. Call before recording starts. Values below
     * kMinRingCapacity (16) are clamped up to it and logged as a
     * warning — the request is not honoured silently.
     */
    void setRingCapacity(std::size_t capacity);

    /** Drop every recorded event (and the drop counters). */
    void clear();

    /** Nanoseconds since the tracer epoch, monotonic. */
    std::uint64_t nowNs() const { return toNs(Clock::now()); }

    /** Convert an externally captured steady time to epoch ns. */
    std::uint64_t toNs(Clock::time_point t) const
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                t - epoch_)
                .count());
    }

    /** Fresh id for an async begin/end pair. */
    std::uint64_t nextAsyncId()
    {
        return nextAsyncId_.fetch_add(1, std::memory_order_relaxed);
    }

    /** Append @p event to the calling thread's ring (tid is set). */
    void record(TraceEvent event);

    /** Record a complete ('X') span from explicit begin/end times. */
    void recordComplete(const char *cat, std::string_view name,
                        Clock::time_point begin, Clock::time_point end,
                        TraceArgs args = {});

    /** Record an instant ('i') event at now. */
    void recordInstant(const char *cat, std::string_view name,
                       TraceArgs args = {});

    /** Record an async begin ('b') event at now. */
    void recordAsyncBegin(const char *cat, std::string_view name,
                          std::uint64_t id, TraceArgs args = {});

    /** Record an async end ('e') event at now. */
    void recordAsyncEnd(const char *cat, std::string_view name,
                        std::uint64_t id, TraceArgs args = {});

    /** All recorded events, sorted by (tsNs, tid, dur desc). */
    std::vector<TraceEvent> collect() const;

    /** Events dropped to ring overflow since the last clear(). */
    std::uint64_t dropped() const;

    /**
     * Chrome trace-event JSON ({"traceEvents":[...]}), one event per
     * line inside the array. Opens directly in Perfetto.
     */
    void writeChromeJson(std::ostream &os) const;
    std::string chromeJson() const;

    /** One JSON object per line per event (the stream wire format). */
    void writeJsonLines(std::ostream &os) const;

  private:
    struct Ring
    {
        explicit Ring(std::size_t capacity, std::uint32_t tid_value)
            : events(capacity), tid(tid_value)
        {
        }
        std::vector<TraceEvent> events;
        std::size_t next = 0;
        std::size_t size = 0;
        std::uint64_t dropped = 0;
        std::uint32_t tid = 0;
        /** Uncontended except during export/clear. */
        mutable std::mutex mutex;
    };

    Ring &localRing();
    Ring &localRingSlow();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Ring>> rings_;
    std::unordered_map<std::thread::id, Ring *> ringByThread_;
    Clock::time_point epoch_;
    std::size_t ringCapacity_ = kDefaultRingCapacity;
    std::atomic<std::uint64_t> nextAsyncId_{1};
    std::uint64_t tracerId_;
};

/**
 * RAII complete-span over the global tracer. When tracing is off the
 * constructor is one relaxed atomic load and the destructor a no-op.
 */
class Span
{
  public:
    Span(const char *cat, std::string_view name, TraceArgs args = {});
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach/overwrite an argument before the span closes. */
    void arg(const char *key, std::uint64_t value);

  private:
    TraceEvent event_{};
    Tracer::Clock::time_point begin_{};
    bool active_ = false;
};

/**
 * A span that always measures wall-clock time (two steady-clock
 * reads) and publishes a trace event only when tracing is on. The
 * compile pipeline uses it as the single source of per-pass timing:
 * PassStats.seconds is read back from this span, whether or not the
 * event was recorded.
 */
class TimedSpan
{
  public:
    TimedSpan(const char *cat, std::string_view name,
              TraceArgs args = {});
    ~TimedSpan();

    TimedSpan(const TimedSpan &) = delete;
    TimedSpan &operator=(const TimedSpan &) = delete;

    void arg(const char *key, std::uint64_t value);

    /** Stop the clock (idempotent) and return elapsed seconds. */
    double stop();

  private:
    TraceEvent event_{};
    Tracer::Clock::time_point begin_;
    double seconds_ = -1.0;
};

/** Guarded free helpers over the global tracer. */
inline void
instant(const char *cat, std::string_view name, TraceArgs args = {})
{
    if (tracingEnabled())
        Tracer::global().recordInstant(cat, name, args);
}

inline void
asyncBegin(const char *cat, std::string_view name, std::uint64_t id,
           TraceArgs args = {})
{
    if (tracingEnabled())
        Tracer::global().recordAsyncBegin(cat, name, id, args);
}

inline void
asyncEnd(const char *cat, std::string_view name, std::uint64_t id,
         TraceArgs args = {})
{
    if (tracingEnabled())
        Tracer::global().recordAsyncEnd(cat, name, id, args);
}

inline void
complete(const char *cat, std::string_view name,
         Tracer::Clock::time_point begin, Tracer::Clock::time_point end,
         TraceArgs args = {})
{
    if (tracingEnabled())
        Tracer::global().recordComplete(cat, name, begin, end, args);
}

} // namespace obs
} // namespace qra

#endif // QRA_OBS_TRACE_HH
