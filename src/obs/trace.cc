#include "obs/trace.hh"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "common/logging.hh"

namespace qra {
namespace obs {

namespace {

std::uint64_t
nextTracerId()
{
    static std::atomic<std::uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

std::uint32_t
nextThreadNumber()
{
    static std::atomic<std::uint32_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
}

/** Stable small integer for the calling thread (Chrome "tid"). */
std::uint32_t
threadNumber()
{
    thread_local std::uint32_t number = nextThreadNumber();
    return number;
}

/** The calling thread's cached (tracer id -> ring) mapping. */
struct TlsRingRef
{
    std::uint64_t tracerId = 0;
    void *ring = nullptr;
};
thread_local TlsRingRef tls_ring;

void
copyTruncated(char *dst, std::size_t cap, std::string_view src)
{
    const std::size_t n = std::min(src.size(), cap - 1);
    std::memcpy(dst, src.data(), n);
    dst[n] = '\0';
}

void
fillEvent(TraceEvent &ev, const char *cat, std::string_view name,
          TraceArgs args)
{
    copyTruncated(ev.name, TraceEvent::kNameLen, name);
    copyTruncated(ev.cat, TraceEvent::kCatLen, cat);
    ev.numArgs = 0;
    for (const TraceArg &a : args) {
        if (ev.numArgs >= 2)
            break;
        copyTruncated(ev.argKey[ev.numArgs], TraceEvent::kKeyLen,
                      a.first);
        ev.argVal[ev.numArgs] = a.second;
        ++ev.numArgs;
    }
}

void
appendArgsJson(std::ostream &os, const TraceEvent &ev)
{
    os << "\"args\":{";
    for (std::uint8_t a = 0; a < ev.numArgs; ++a) {
        if (a > 0)
            os << ",";
        os << "\"" << ev.argKey[a] << "\":" << ev.argVal[a];
    }
    os << "}";
}

} // namespace

Tracer::Tracer()
    : epoch_(Clock::now()), tracerId_(nextTracerId())
{
}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::setRingCapacity(std::size_t capacity)
{
    if (capacity < kMinRingCapacity)
        logWarn("Tracer::setRingCapacity(" +
                std::to_string(capacity) + ") is below the floor of " +
                std::to_string(kMinRingCapacity) +
                " events; clamping up");
    std::lock_guard<std::mutex> lock(mutex_);
    ringCapacity_ = std::max(capacity, kMinRingCapacity);
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        ring->next = 0;
        ring->size = 0;
        ring->dropped = 0;
    }
}

Tracer::Ring &
Tracer::localRing()
{
    if (tls_ring.tracerId == tracerId_)
        return *static_cast<Ring *>(tls_ring.ring);
    return localRingSlow();
}

Tracer::Ring &
Tracer::localRingSlow()
{
    std::lock_guard<std::mutex> lock(mutex_);
    Ring *&slot = ringByThread_[std::this_thread::get_id()];
    if (slot == nullptr) {
        rings_.push_back(
            std::make_unique<Ring>(ringCapacity_, threadNumber()));
        slot = rings_.back().get();
    }
    tls_ring.tracerId = tracerId_;
    tls_ring.ring = slot;
    return *slot;
}

void
Tracer::record(TraceEvent event)
{
    Ring &ring = localRing();
    std::lock_guard<std::mutex> lock(ring.mutex);
    event.tid = ring.tid;
    ring.events[ring.next] = event;
    ring.next = (ring.next + 1) % ring.events.size();
    if (ring.size < ring.events.size())
        ++ring.size;
    else
        ++ring.dropped;
}

void
Tracer::recordComplete(const char *cat, std::string_view name,
                       Clock::time_point begin, Clock::time_point end,
                       TraceArgs args)
{
    TraceEvent ev;
    fillEvent(ev, cat, name, args);
    ev.ph = 'X';
    ev.tsNs = toNs(begin);
    ev.durNs = end >= begin ? toNs(end) - ev.tsNs : 0;
    record(ev);
}

void
Tracer::recordInstant(const char *cat, std::string_view name,
                      TraceArgs args)
{
    TraceEvent ev;
    fillEvent(ev, cat, name, args);
    ev.ph = 'i';
    ev.tsNs = nowNs();
    record(ev);
}

void
Tracer::recordAsyncBegin(const char *cat, std::string_view name,
                         std::uint64_t id, TraceArgs args)
{
    TraceEvent ev;
    fillEvent(ev, cat, name, args);
    ev.ph = 'b';
    ev.id = id;
    ev.tsNs = nowNs();
    record(ev);
}

void
Tracer::recordAsyncEnd(const char *cat, std::string_view name,
                       std::uint64_t id, TraceArgs args)
{
    TraceEvent ev;
    fillEvent(ev, cat, name, args);
    ev.ph = 'e';
    ev.id = id;
    ev.tsNs = nowNs();
    record(ev);
}

std::vector<TraceEvent>
Tracer::collect() const
{
    std::vector<TraceEvent> events;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        // Oldest surviving event first: when the ring wrapped, the
        // oldest entry is at `next` (about to be overwritten).
        const std::size_t start =
            ring->size < ring->events.size() ? 0 : ring->next;
        for (std::size_t i = 0; i < ring->size; ++i)
            events.push_back(
                ring->events[(start + i) % ring->events.size()]);
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent &a, const TraceEvent &b) {
                         if (a.tsNs != b.tsNs)
                             return a.tsNs < b.tsNs;
                         if (a.tid != b.tid)
                             return a.tid < b.tid;
                         // Enclosing span before enclosed at equal ts.
                         return a.durNs > b.durNs;
                     });
    return events;
}

std::uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &ring : rings_) {
        std::lock_guard<std::mutex> ring_lock(ring->mutex);
        total += ring->dropped;
    }
    return total;
}

void
Tracer::writeChromeJson(std::ostream &os) const
{
    const std::vector<TraceEvent> events = collect();
    // Chrome trace format wants microsecond timestamps; keep three
    // decimals so nanosecond ordering survives the conversion.
    os << "{\"traceEvents\":[\n";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &ev = events[i];
        os << "{\"name\":\"" << ev.name << "\",\"cat\":\"" << ev.cat
           << "\",\"ph\":\"" << ev.ph << "\",\"pid\":1,\"tid\":"
           << ev.tid << ",\"ts\":" << ev.tsNs / 1000 << "."
           << (ev.tsNs % 1000) / 100 << (ev.tsNs % 100) / 10
           << ev.tsNs % 10;
        if (ev.ph == 'X')
            os << ",\"dur\":" << ev.durNs / 1000 << "."
               << (ev.durNs % 1000) / 100 << (ev.durNs % 100) / 10
               << ev.durNs % 10;
        if (ev.ph == 'b' || ev.ph == 'e')
            os << ",\"id\":" << ev.id;
        if (ev.ph == 'i')
            os << ",\"s\":\"t\"";
        os << ",";
        appendArgsJson(os, ev);
        os << "}" << (i + 1 < events.size() ? "," : "") << "\n";
    }
    os << "]}\n";
}

std::string
Tracer::chromeJson() const
{
    std::ostringstream os;
    writeChromeJson(os);
    return os.str();
}

void
Tracer::writeJsonLines(std::ostream &os) const
{
    const std::vector<TraceEvent> events = collect();
    for (const TraceEvent &ev : events) {
        os << "{\"type\":\"" << ev.ph << "\",\"name\":\"" << ev.name
           << "\",\"cat\":\"" << ev.cat << "\",\"tid\":" << ev.tid
           << ",\"ts_ns\":" << ev.tsNs;
        if (ev.ph == 'X')
            os << ",\"dur_ns\":" << ev.durNs;
        if (ev.ph == 'b' || ev.ph == 'e')
            os << ",\"id\":" << ev.id;
        os << ",";
        appendArgsJson(os, ev);
        os << "}\n";
    }
}

Span::Span(const char *cat, std::string_view name, TraceArgs args)
{
    if (!tracingEnabled())
        return;
    active_ = true;
    fillEvent(event_, cat, name, args);
    event_.ph = 'X';
    begin_ = Tracer::Clock::now();
}

void
Span::arg(const char *key, std::uint64_t value)
{
    if (!active_)
        return;
    for (std::uint8_t a = 0; a < event_.numArgs; ++a) {
        if (std::strncmp(event_.argKey[a], key,
                         TraceEvent::kKeyLen) == 0) {
            event_.argVal[a] = value;
            return;
        }
    }
    if (event_.numArgs >= 2)
        return;
    copyTruncated(event_.argKey[event_.numArgs], TraceEvent::kKeyLen,
                  key);
    event_.argVal[event_.numArgs] = value;
    ++event_.numArgs;
}

Span::~Span()
{
    if (!active_)
        return;
    Tracer &tracer = Tracer::global();
    const Tracer::Clock::time_point end = Tracer::Clock::now();
    event_.tsNs = tracer.toNs(begin_);
    event_.durNs = tracer.toNs(end) - event_.tsNs;
    tracer.record(event_);
}

TimedSpan::TimedSpan(const char *cat, std::string_view name,
                     TraceArgs args)
{
    fillEvent(event_, cat, name, args);
    event_.ph = 'X';
    begin_ = Tracer::Clock::now();
}

void
TimedSpan::arg(const char *key, std::uint64_t value)
{
    for (std::uint8_t a = 0; a < event_.numArgs; ++a) {
        if (std::strncmp(event_.argKey[a], key,
                         TraceEvent::kKeyLen) == 0) {
            event_.argVal[a] = value;
            return;
        }
    }
    if (event_.numArgs >= 2)
        return;
    copyTruncated(event_.argKey[event_.numArgs], TraceEvent::kKeyLen,
                  key);
    event_.argVal[event_.numArgs] = value;
    ++event_.numArgs;
}

double
TimedSpan::stop()
{
    if (seconds_ >= 0.0)
        return seconds_;
    const Tracer::Clock::time_point end = Tracer::Clock::now();
    seconds_ = std::chrono::duration<double>(end - begin_).count();
    if (tracingEnabled()) {
        Tracer &tracer = Tracer::global();
        event_.tsNs = tracer.toNs(begin_);
        event_.durNs = tracer.toNs(end) - event_.tsNs;
        tracer.record(event_);
    }
    return seconds_;
}

TimedSpan::~TimedSpan()
{
    stop();
}

} // namespace obs
} // namespace qra
