/**
 * @file
 * Pauli-string observables: expectation values of tensor products of
 * I/X/Y/Z on both pure and mixed states. Used by tests to verify the
 * assertion circuits' disentanglement claims via entanglement
 * witnesses, and available as public API.
 */

#ifndef QRA_MATH_PAULI_HH
#define QRA_MATH_PAULI_HH

#include <string>
#include <vector>

#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {

class StateVector;
class DensityMatrix;

/** A tensor product of single-qubit Paulis over a register. */
class PauliString
{
  public:
    /**
     * Parse from text, leftmost character = qubit 0, e.g. "XZI" is
     * X on qubit 0, Z on qubit 1, identity on qubit 2.
     * @throws ValueError on characters outside {I, X, Y, Z}.
     */
    explicit PauliString(const std::string &labels);

    std::size_t numQubits() const { return labels_.size(); }

    /** The label character for qubit @p q. */
    char label(Qubit q) const { return labels_.at(q); }

    /** True when every label is 'I'. */
    bool isIdentity() const;

    /** Qubits with a non-identity label. */
    std::vector<Qubit> support() const;

    /** Dense 2^n x 2^n matrix of the observable (small n only). */
    Matrix toMatrix() const;

    /** <psi| P |psi>. */
    double expectation(const StateVector &psi) const;

    /** Tr(rho P). */
    double expectation(const DensityMatrix &rho) const;

    const std::string &str() const { return labels_; }

  private:
    std::string labels_;
};

} // namespace qra

#endif // QRA_MATH_PAULI_HH
