#include "math/gates.hh"

#include <cmath>

namespace qra {
namespace gates {

namespace {
const Complex k0{0.0, 0.0};
const Complex k1{1.0, 0.0};
} // namespace

Matrix
i1()
{
    return Matrix::identity(2);
}

Matrix
x()
{
    return Matrix{{k0, k1}, {k1, k0}};
}

Matrix
y()
{
    return Matrix{{k0, -kI}, {kI, k0}};
}

Matrix
z()
{
    return Matrix{{k1, k0}, {k0, -k1}};
}

Matrix
h()
{
    const Complex c{kInvSqrt2, 0.0};
    return Matrix{{c, c}, {c, -c}};
}

Matrix
s()
{
    return Matrix{{k1, k0}, {k0, kI}};
}

Matrix
sdg()
{
    return Matrix{{k1, k0}, {k0, -kI}};
}

Matrix
t()
{
    return Matrix{{k1, k0}, {k0, std::polar(1.0, M_PI / 4.0)}};
}

Matrix
tdg()
{
    return Matrix{{k1, k0}, {k0, std::polar(1.0, -M_PI / 4.0)}};
}

Matrix
sx()
{
    const Complex a{0.5, 0.5};
    const Complex b{0.5, -0.5};
    return Matrix{{a, b}, {b, a}};
}

Matrix
rx(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s_ = std::sin(theta / 2.0);
    return Matrix{{Complex{c, 0.0}, Complex{0.0, -s_}},
                  {Complex{0.0, -s_}, Complex{c, 0.0}}};
}

Matrix
ry(double theta)
{
    const double c = std::cos(theta / 2.0);
    const double s_ = std::sin(theta / 2.0);
    return Matrix{{Complex{c, 0.0}, Complex{-s_, 0.0}},
                  {Complex{s_, 0.0}, Complex{c, 0.0}}};
}

Matrix
rz(double theta)
{
    return Matrix{{std::polar(1.0, -theta / 2.0), k0},
                  {k0, std::polar(1.0, theta / 2.0)}};
}

Matrix
p(double lambda)
{
    return Matrix{{k1, k0}, {k0, std::polar(1.0, lambda)}};
}

Matrix
u(double theta, double phi, double lambda)
{
    const double c = std::cos(theta / 2.0);
    const double s_ = std::sin(theta / 2.0);
    return Matrix{
        {Complex{c, 0.0}, -std::polar(s_, lambda)},
        {std::polar(s_, phi), std::polar(c, phi + lambda)}};
}

// Two-qubit matrices use local index (bit0 = first gate argument).
// For cx(), argument 0 is the control, argument 1 the target, so the
// basis order is |t c> with c the least-significant bit.

Matrix
cx()
{
    return Matrix{{k1, k0, k0, k0},
                  {k0, k0, k0, k1},
                  {k0, k0, k1, k0},
                  {k0, k1, k0, k0}};
}

Matrix
cy()
{
    return Matrix{{k1, k0, k0, k0},
                  {k0, k0, k0, -kI},
                  {k0, k0, k1, k0},
                  {k0, kI, k0, k0}};
}

Matrix
cz()
{
    Matrix m = Matrix::identity(4);
    m(3, 3) = -k1;
    return m;
}

Matrix
swap()
{
    return Matrix{{k1, k0, k0, k0},
                  {k0, k0, k1, k0},
                  {k0, k1, k0, k0},
                  {k0, k0, k0, k1}};
}

Matrix
ccx()
{
    Matrix m = Matrix::identity(8);
    // Flip target (bit 2) when both controls (bits 0, 1) are set:
    // index 3 (011) <-> index 7 (111).
    m(3, 3) = k0;
    m(7, 7) = k0;
    m(3, 7) = k1;
    m(7, 3) = k1;
    return m;
}

Matrix
proj0()
{
    return Matrix{{k1, k0}, {k0, k0}};
}

Matrix
proj1()
{
    return Matrix{{k0, k0}, {k0, k1}};
}

} // namespace gates
} // namespace qra
