/**
 * @file
 * Free-standing linear-algebra helpers on amplitude vectors and
 * density matrices: norms, inner products, fidelities, purity.
 */

#ifndef QRA_MATH_LINALG_HH
#define QRA_MATH_LINALG_HH

#include <vector>

#include "math/matrix.hh"
#include "math/types.hh"

namespace qra {
namespace linalg {

/** <a|b> with conjugation on @p a. */
Complex innerProduct(const std::vector<Complex> &a,
                     const std::vector<Complex> &b);

/** Euclidean (l2) norm of an amplitude vector. */
double norm(const std::vector<Complex> &v);

/** Scale @p v in place so its l2 norm becomes 1. */
void normalize(std::vector<Complex> &v);

/** |<a|b>|^2: fidelity between two pure states. */
double stateFidelity(const std::vector<Complex> &a,
                     const std::vector<Complex> &b);

/** <psi| rho |psi>: fidelity of a mixed state against a pure target. */
double mixedStateFidelity(const Matrix &rho,
                          const std::vector<Complex> &psi);

/** Tr(rho^2): purity of a density matrix. */
double purity(const Matrix &rho);

/** |psi><psi| outer product. */
Matrix outer(const std::vector<Complex> &psi);

/**
 * Partial trace of an n-qubit density matrix over @p traced_qubits
 * (little-endian qubit indexing, bit i of the basis index = qubit i).
 *
 * @param rho 2^n x 2^n density matrix.
 * @param num_qubits n.
 * @param traced_qubits Qubits to trace out (each < n, no duplicates).
 * @return Density matrix over the remaining qubits, which keep their
 *         relative order.
 */
Matrix partialTrace(const Matrix &rho, std::size_t num_qubits,
                    const std::vector<std::size_t> &traced_qubits);

} // namespace linalg
} // namespace qra

#endif // QRA_MATH_LINALG_HH
