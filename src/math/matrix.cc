#include "math/matrix.hh"

#include <cmath>
#include <sstream>

#include "common/error.hh"

namespace qra {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, Complex{0.0, 0.0})
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &row : rows) {
        if (row.size() != cols_)
            QRA_FATAL("matrix initialiser rows have unequal lengths");
        data_.insert(data_.end(), row.begin(), row.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::zeros(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::columnVector(const std::vector<Complex> &amps)
{
    Matrix m(amps.size(), 1);
    m.data_ = amps;
    return m;
}

Complex &
Matrix::operator()(std::size_t r, std::size_t c)
{
    return data_[r * cols_ + c];
}

const Complex &
Matrix::operator()(std::size_t r, std::size_t c) const
{
    return data_[r * cols_ + c];
}

Matrix
Matrix::operator+(const Matrix &rhs) const
{
    Matrix out(*this);
    out += rhs;
    return out;
}

Matrix
Matrix::operator-(const Matrix &rhs) const
{
    Matrix out(*this);
    out -= rhs;
    return out;
}

Matrix &
Matrix::operator+=(const Matrix &rhs)
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        QRA_FATAL("matrix addition dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += rhs.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &rhs)
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        QRA_FATAL("matrix subtraction dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= rhs.data_[i];
    return *this;
}

Matrix
Matrix::operator*(const Matrix &rhs) const
{
    if (cols_ != rhs.rows_)
        QRA_FATAL("matrix multiplication dimension mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const Complex aik = (*this)(i, k);
            if (aik == Complex{0.0, 0.0})
                continue;
            for (std::size_t j = 0; j < rhs.cols_; ++j)
                out(i, j) += aik * rhs(k, j);
        }
    }
    return out;
}

Matrix
Matrix::operator*(Complex scalar) const
{
    Matrix out(*this);
    out *= scalar;
    return out;
}

Matrix &
Matrix::operator*=(Complex scalar)
{
    for (auto &v : data_)
        v *= scalar;
    return *this;
}

Matrix
operator*(Complex scalar, const Matrix &m)
{
    return m * scalar;
}

Matrix
Matrix::adjoint() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = std::conj((*this)(r, c));
    return out;
}

Matrix
Matrix::transpose() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

Matrix
Matrix::conjugate() const
{
    Matrix out(*this);
    for (auto &v : out.data_)
        v = std::conj(v);
    return out;
}

Matrix
Matrix::kron(const Matrix &rhs) const
{
    Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex a = (*this)(r, c);
            if (a == Complex{0.0, 0.0})
                continue;
            for (std::size_t rr = 0; rr < rhs.rows_; ++rr)
                for (std::size_t cc = 0; cc < rhs.cols_; ++cc)
                    out(r * rhs.rows_ + rr, c * rhs.cols_ + cc) =
                        a * rhs(rr, cc);
        }
    }
    return out;
}

Complex
Matrix::trace() const
{
    if (!isSquare())
        QRA_FATAL("trace of a non-square matrix");
    Complex t{0.0, 0.0};
    for (std::size_t i = 0; i < rows_; ++i)
        t += (*this)(i, i);
    return t;
}

double
Matrix::frobeniusNorm() const
{
    double sum = 0.0;
    for (const auto &v : data_)
        sum += std::norm(v);
    return std::sqrt(sum);
}

double
Matrix::maxAbsDiff(const Matrix &rhs) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        QRA_FATAL("maxAbsDiff dimension mismatch");
    double max_diff = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i)
        max_diff = std::max(max_diff, std::abs(data_[i] - rhs.data_[i]));
    return max_diff;
}

bool
Matrix::isUnitary(double tol) const
{
    if (!isSquare())
        return false;
    return ((*this) * adjoint()).isIdentity(tol);
}

bool
Matrix::isHermitian(double tol) const
{
    if (!isSquare())
        return false;
    return maxAbsDiff(adjoint()) <= tol;
}

bool
Matrix::isDiagonal(double tol) const
{
    if (!isSquare())
        return false;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            if (r != c && std::abs((*this)(r, c)) > tol)
                return false;
    return true;
}

bool
Matrix::isIdentity(double tol) const
{
    if (!isSquare())
        return false;
    return maxAbsDiff(identity(rows_)) <= tol;
}

bool
Matrix::approxEqual(const Matrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;
    return maxAbsDiff(rhs) <= tol;
}

bool
Matrix::equalUpToGlobalPhase(const Matrix &rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_)
        return false;

    // Find the largest-magnitude element of rhs to anchor the phase.
    std::size_t anchor = 0;
    double best = -1.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        const double mag = std::abs(rhs.data_[i]);
        if (mag > best) {
            best = mag;
            anchor = i;
        }
    }
    if (best <= tol)
        return frobeniusNorm() <= tol;
    if (std::abs(data_[anchor]) <= tol)
        return false;

    const Complex phase = data_[anchor] / rhs.data_[anchor];
    Matrix scaled = rhs * phase;
    return maxAbsDiff(scaled) <= tol;
}

std::string
Matrix::str(int precision) const
{
    std::ostringstream os;
    os.precision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << "[ ";
        for (std::size_t c = 0; c < cols_; ++c) {
            const Complex v = (*this)(r, c);
            os << v.real();
            if (v.imag() >= 0)
                os << "+" << v.imag() << "i ";
            else
                os << v.imag() << "i ";
        }
        os << "]\n";
    }
    return os.str();
}

} // namespace qra
