#include "math/linalg.hh"

#include <cmath>

#include "common/error.hh"

namespace qra {
namespace linalg {

Complex
innerProduct(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    if (a.size() != b.size())
        QRA_FATAL("inner product dimension mismatch");
    Complex sum{0.0, 0.0};
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += std::conj(a[i]) * b[i];
    return sum;
}

double
norm(const std::vector<Complex> &v)
{
    double sum = 0.0;
    for (const auto &amp : v)
        sum += std::norm(amp);
    return std::sqrt(sum);
}

void
normalize(std::vector<Complex> &v)
{
    const double n = norm(v);
    if (n < kTol)
        QRA_FATAL("cannot normalise a (near-)zero vector");
    for (auto &amp : v)
        amp /= n;
}

double
stateFidelity(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    return std::norm(innerProduct(a, b));
}

double
mixedStateFidelity(const Matrix &rho, const std::vector<Complex> &psi)
{
    if (rho.rows() != psi.size() || !rho.isSquare())
        QRA_FATAL("mixedStateFidelity dimension mismatch");
    Complex sum{0.0, 0.0};
    for (std::size_t r = 0; r < rho.rows(); ++r)
        for (std::size_t c = 0; c < rho.cols(); ++c)
            sum += std::conj(psi[r]) * rho(r, c) * psi[c];
    return sum.real();
}

double
purity(const Matrix &rho)
{
    if (!rho.isSquare())
        QRA_FATAL("purity of a non-square matrix");
    // Tr(rho^2) = sum_ij rho_ij * rho_ji; for Hermitian rho this is
    // the squared Frobenius norm.
    double sum = 0.0;
    for (const auto &v : rho.data())
        sum += std::norm(v);
    return sum;
}

Matrix
outer(const std::vector<Complex> &psi)
{
    Matrix rho(psi.size(), psi.size());
    for (std::size_t r = 0; r < psi.size(); ++r)
        for (std::size_t c = 0; c < psi.size(); ++c)
            rho(r, c) = psi[r] * std::conj(psi[c]);
    return rho;
}

Matrix
partialTrace(const Matrix &rho, std::size_t num_qubits,
             const std::vector<std::size_t> &traced_qubits)
{
    const std::size_t dim = std::size_t{1} << num_qubits;
    if (rho.rows() != dim || rho.cols() != dim)
        QRA_FATAL("partialTrace: matrix does not match qubit count");

    std::uint64_t traced_mask = 0;
    for (std::size_t q : traced_qubits) {
        if (q >= num_qubits)
            QRA_FATAL("partialTrace: qubit index out of range");
        if (traced_mask & (std::uint64_t{1} << q))
            QRA_FATAL("partialTrace: duplicate traced qubit");
        traced_mask |= std::uint64_t{1} << q;
    }

    const std::size_t num_kept = num_qubits - traced_qubits.size();
    const std::size_t kept_dim = std::size_t{1} << num_kept;
    const std::size_t traced_dim =
        std::size_t{1} << traced_qubits.size();

    // Enumerate kept qubits in ascending order so they preserve their
    // relative order in the reduced matrix.
    std::vector<std::size_t> kept;
    kept.reserve(num_kept);
    for (std::size_t q = 0; q < num_qubits; ++q)
        if (!(traced_mask & (std::uint64_t{1} << q)))
            kept.push_back(q);

    auto expand = [&](std::size_t kept_bits,
                      std::size_t traced_bits) -> std::size_t {
        std::size_t full = 0;
        for (std::size_t i = 0; i < kept.size(); ++i)
            if ((kept_bits >> i) & 1)
                full |= std::size_t{1} << kept[i];
        for (std::size_t i = 0; i < traced_qubits.size(); ++i)
            if ((traced_bits >> i) & 1)
                full |= std::size_t{1} << traced_qubits[i];
        return full;
    };

    Matrix out(kept_dim, kept_dim);
    for (std::size_t r = 0; r < kept_dim; ++r) {
        for (std::size_t c = 0; c < kept_dim; ++c) {
            Complex sum{0.0, 0.0};
            for (std::size_t e = 0; e < traced_dim; ++e)
                sum += rho(expand(r, e), expand(c, e));
            out(r, c) = sum;
        }
    }
    return out;
}

} // namespace linalg
} // namespace qra
