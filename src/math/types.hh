/**
 * @file
 * Fundamental numeric types shared by all QRA modules.
 */

#ifndef QRA_MATH_TYPES_HH
#define QRA_MATH_TYPES_HH

#include <complex>
#include <cstddef>
#include <cstdint>

namespace qra {

/** Complex amplitude type used throughout the library. */
using Complex = std::complex<double>;

/** Index of a qubit within a circuit or register. */
using Qubit = std::uint32_t;

/** Index of a classical bit within a circuit. */
using Clbit = std::uint32_t;

/** Computational-basis index into a state vector (up to 63 qubits). */
using BasisIndex = std::uint64_t;

/** Imaginary unit. */
inline constexpr Complex kI{0.0, 1.0};

/** Default absolute tolerance for floating-point comparisons. */
inline constexpr double kTol = 1e-10;

/** 1/sqrt(2), the ubiquitous Hadamard coefficient. */
inline constexpr double kInvSqrt2 = 0.70710678118654752440;

} // namespace qra

#endif // QRA_MATH_TYPES_HH
