/**
 * @file
 * Dense complex matrix with the operations quantum simulation needs:
 * multiplication, adjoint, Kronecker product, and structural
 * predicates (unitary, Hermitian, identity).
 *
 * The matrix is row-major and dynamically sized. Gate matrices are
 * tiny (2x2 .. 8x8), density matrices go up to 2^n x 2^n for small n;
 * no BLAS dependency is warranted at these sizes.
 */

#ifndef QRA_MATH_MATRIX_HH
#define QRA_MATH_MATRIX_HH

#include <initializer_list>
#include <string>
#include <vector>

#include "math/types.hh"

namespace qra {

/** Dense row-major complex matrix. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialised rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /**
     * Build from nested initialiser lists:
     * Matrix m{{1, 0}, {0, 1}};
     * @throws ValueError if rows have unequal lengths.
     */
    Matrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** n x n identity. */
    static Matrix identity(std::size_t n);

    /** rows x cols matrix of zeros. */
    static Matrix zeros(std::size_t rows, std::size_t cols);

    /** Column vector from amplitudes. */
    static Matrix columnVector(const std::vector<Complex> &amps);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** True when rows() == cols(). */
    bool isSquare() const { return rows_ == cols_; }

    /** Element access (bounds-checked in debug builds only). */
    Complex &operator()(std::size_t r, std::size_t c);
    const Complex &operator()(std::size_t r, std::size_t c) const;

    /** Raw row-major storage (size rows()*cols()). */
    const std::vector<Complex> &data() const { return data_; }
    std::vector<Complex> &data() { return data_; }

    Matrix operator+(const Matrix &rhs) const;
    Matrix operator-(const Matrix &rhs) const;
    Matrix operator*(const Matrix &rhs) const;
    Matrix operator*(Complex scalar) const;
    Matrix &operator+=(const Matrix &rhs);
    Matrix &operator-=(const Matrix &rhs);
    Matrix &operator*=(Complex scalar);

    /** Conjugate transpose. */
    Matrix adjoint() const;

    /** Transpose without conjugation. */
    Matrix transpose() const;

    /** Element-wise complex conjugate. */
    Matrix conjugate() const;

    /** Kronecker (tensor) product this (x) rhs. */
    Matrix kron(const Matrix &rhs) const;

    /** Sum of diagonal elements. @throws ValueError if not square. */
    Complex trace() const;

    /** Frobenius norm. */
    double frobeniusNorm() const;

    /** Max |a_ij - b_ij| over all elements; matrices must be congruent. */
    double maxAbsDiff(const Matrix &rhs) const;

    /** True iff U * U^dagger == I within @p tol. */
    bool isUnitary(double tol = kTol) const;

    /** True iff A == A^dagger within @p tol. */
    bool isHermitian(double tol = kTol) const;

    /**
     * True iff every off-diagonal element has magnitude <= @p tol.
     * With tol = 0.0 this is an exact structural test, which the gate
     * kernels use to route diagonal matrices to the cheap path.
     */
    bool isDiagonal(double tol = kTol) const;

    /** True iff this == I within @p tol. */
    bool isIdentity(double tol = kTol) const;

    /** True iff every element matches @p rhs within @p tol. */
    bool approxEqual(const Matrix &rhs, double tol = kTol) const;

    /**
     * True iff this == e^{i phi} * rhs for some global phase phi,
     * within @p tol. Needed when comparing decomposed gate sequences.
     */
    bool equalUpToGlobalPhase(const Matrix &rhs, double tol = 1e-8) const;

    /** Multi-line human-readable rendering (for diagnostics). */
    std::string str(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

/** Scalar * matrix convenience overload. */
Matrix operator*(Complex scalar, const Matrix &m);

} // namespace qra

#endif // QRA_MATH_MATRIX_HH
