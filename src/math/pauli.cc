#include "math/pauli.hh"

#include "common/error.hh"
#include "math/gates.hh"
#include "sim/density_matrix.hh"
#include "sim/state_vector.hh"

namespace qra {

namespace {

const Matrix &
pauliMatrix(char label)
{
    static const Matrix id = Matrix::identity(2);
    static const Matrix px = gates::x();
    static const Matrix py = gates::y();
    static const Matrix pz = gates::z();
    switch (label) {
      case 'I': return id;
      case 'X': return px;
      case 'Y': return py;
      case 'Z': return pz;
    }
    QRA_PANIC("invalid pauli label slipped through validation");
}

} // namespace

PauliString::PauliString(const std::string &labels) : labels_(labels)
{
    if (labels_.empty())
        QRA_FATAL("empty Pauli string");
    for (char c : labels_)
        if (c != 'I' && c != 'X' && c != 'Y' && c != 'Z')
            QRA_FATAL(std::string("invalid Pauli label '") + c + "'");
}

bool
PauliString::isIdentity() const
{
    return labels_.find_first_not_of('I') == std::string::npos;
}

std::vector<Qubit>
PauliString::support() const
{
    std::vector<Qubit> qubits;
    for (std::size_t q = 0; q < labels_.size(); ++q)
        if (labels_[q] != 'I')
            qubits.push_back(static_cast<Qubit>(q));
    return qubits;
}

Matrix
PauliString::toMatrix() const
{
    if (labels_.size() > 12)
        QRA_FATAL("dense Pauli matrix limited to 12 qubits");
    // kron composes with qubit 0 as the least-significant factor:
    // M = P_{n-1} (x) ... (x) P_0.
    Matrix m = pauliMatrix(labels_[0]);
    for (std::size_t q = 1; q < labels_.size(); ++q)
        m = pauliMatrix(labels_[q]).kron(m);
    return m;
}

double
PauliString::expectation(const StateVector &psi) const
{
    if (psi.numQubits() != labels_.size())
        QRA_FATAL("Pauli string width does not match the state");

    // Apply P to a copy and take the inner product: <psi|P|psi>.
    std::vector<Complex> transformed = psi.amplitudes();
    StateVector scratch = StateVector::fromAmplitudes(transformed);
    for (Qubit q : support()) {
        const Matrix &p = pauliMatrix(labels_[q]);
        scratch.applyMatrix(p, {q});
    }
    Complex acc{0.0, 0.0};
    for (std::size_t i = 0; i < transformed.size(); ++i)
        acc += std::conj(psi.amplitudes()[i]) *
               scratch.amplitudes()[i];
    return acc.real();
}

double
PauliString::expectation(const DensityMatrix &rho) const
{
    if (rho.numQubits() != labels_.size())
        QRA_FATAL("Pauli string width does not match the state");

    // Tr(rho P): apply P on the left of rho and take the trace;
    // done via the dense observable for the small registers the
    // density backend supports.
    const Matrix p = toMatrix();
    Complex acc{0.0, 0.0};
    for (std::size_t r = 0; r < rho.dim(); ++r)
        for (std::size_t k = 0; k < rho.dim(); ++k)
            acc += rho.matrix()(r, k) * p(k, r);
    return acc.real();
}

} // namespace qra
