/**
 * @file
 * Canonical unitary matrices of the QRA gate set.
 *
 * All two-qubit matrices use the library's little-endian ordering:
 * basis index bit 0 is the *first* qubit argument of the gate. For
 * CX(control, target) the matrix acts on the space
 * |target, control> = |q1 q0> with control = bit 0.
 */

#ifndef QRA_MATH_GATES_HH
#define QRA_MATH_GATES_HH

#include "math/matrix.hh"

namespace qra {
namespace gates {

/** 2x2 identity. */
Matrix i1();
/** Pauli-X. */
Matrix x();
/** Pauli-Y. */
Matrix y();
/** Pauli-Z. */
Matrix z();
/** Hadamard. */
Matrix h();
/** Phase gate S = diag(1, i). */
Matrix s();
/** S-dagger. */
Matrix sdg();
/** T = diag(1, e^{i pi/4}). */
Matrix t();
/** T-dagger. */
Matrix tdg();
/** Square root of X. */
Matrix sx();

/** Rotation about X by @p theta. */
Matrix rx(double theta);
/** Rotation about Y by @p theta. */
Matrix ry(double theta);
/** Rotation about Z by @p theta (phase-symmetric convention). */
Matrix rz(double theta);
/** Phase gate diag(1, e^{i lambda}). */
Matrix p(double lambda);
/** Generic single-qubit unitary U(theta, phi, lambda), OpenQASM u3. */
Matrix u(double theta, double phi, double lambda);

/** CNOT with control = qubit argument 0, target = qubit argument 1. */
Matrix cx();
/** Controlled-Y. */
Matrix cy();
/** Controlled-Z (symmetric). */
Matrix cz();
/** SWAP. */
Matrix swap();
/** Toffoli (controls = args 0,1; target = arg 2). */
Matrix ccx();

/** Projector |0><0|. */
Matrix proj0();
/** Projector |1><1|. */
Matrix proj1();

} // namespace gates
} // namespace qra

#endif // QRA_MATH_GATES_HH
