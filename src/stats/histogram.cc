#include "stats/histogram.hh"

#include <algorithm>
#include <sstream>

#include "common/error.hh"
#include "common/strings.hh"

namespace qra {
namespace stats {

std::size_t
totalShots(const Counts &counts)
{
    std::size_t total = 0;
    for (const auto &[key, n] : counts)
        total += n;
    return total;
}

Distribution
toDistribution(const Counts &counts)
{
    const std::size_t total = totalShots(counts);
    Distribution dist;
    if (total == 0)
        return dist;
    for (const auto &[key, n] : counts)
        dist[key] = static_cast<double>(n) / static_cast<double>(total);
    return dist;
}

double
filterDistribution(Distribution &dist,
                   const std::vector<std::uint64_t> &kept_keys)
{
    Distribution filtered;
    double retained = 0.0;
    for (std::uint64_t key : kept_keys) {
        const auto it = dist.find(key);
        if (it != dist.end()) {
            filtered[key] = it->second;
            retained += it->second;
        }
    }
    if (retained > 0.0)
        for (auto &[key, p] : filtered)
            p /= retained;
    dist = std::move(filtered);
    return retained;
}

Distribution
marginalize(const Distribution &dist, const std::vector<std::size_t> &bits)
{
    Distribution out;
    for (const auto &[key, p] : dist) {
        std::uint64_t reduced = 0;
        for (std::size_t j = 0; j < bits.size(); ++j)
            if ((key >> bits[j]) & 1)
                reduced |= std::uint64_t{1} << j;
        out[reduced] += p;
    }
    return out;
}

std::string
distributionToString(const Distribution &dist, std::size_t width)
{
    std::ostringstream os;
    bool first = true;
    for (const auto &[key, p] : dist) {
        if (!first)
            os << " ";
        first = false;
        os << toBitstring(key, width) << ":" << formatDouble(p, 3);
    }
    return os.str();
}

} // namespace stats
} // namespace qra
