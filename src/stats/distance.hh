/**
 * @file
 * Distances between outcome distributions: total variation and
 * Hellinger. Used to quantify how much assertion filtering moves a
 * noisy distribution toward the ideal one.
 */

#ifndef QRA_STATS_DISTANCE_HH
#define QRA_STATS_DISTANCE_HH

#include "stats/histogram.hh"

namespace qra {
namespace stats {

/** Total variation distance: (1/2) sum |p_i - q_i|, in [0, 1]. */
double totalVariation(const Distribution &p, const Distribution &q);

/** Hellinger distance: sqrt(1 - sum sqrt(p_i q_i)), in [0, 1]. */
double hellinger(const Distribution &p, const Distribution &q);

/** Binomial proportion 95% Wilson confidence half-width. */
double wilsonHalfWidth(double p_hat, std::size_t n);

} // namespace stats
} // namespace qra

#endif // QRA_STATS_DISTANCE_HH
