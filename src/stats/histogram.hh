/**
 * @file
 * Counts/histogram utilities shared by the assertion analyser and the
 * benchmark harness.
 */

#ifndef QRA_STATS_HISTOGRAM_HH
#define QRA_STATS_HISTOGRAM_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qra {
namespace stats {

/** Integer-keyed outcome counts. */
using Counts = std::map<std::uint64_t, std::size_t>;

/** Probability distribution over integer outcomes. */
using Distribution = std::map<std::uint64_t, double>;

/** Total number of shots in @p counts. */
std::size_t totalShots(const Counts &counts);

/** Normalise counts into an empirical distribution. */
Distribution toDistribution(const Counts &counts);

/** Restrict a distribution to keys where @p keep returns true,
 *  renormalising the survivors. Returns the retained mass. */
double filterDistribution(Distribution &dist,
                          const std::vector<std::uint64_t> &kept_keys);

/**
 * Marginalise a distribution over register bits: keep only the bits
 * listed in @p bits (bit j of the new key = old bit bits[j]).
 */
Distribution marginalize(const Distribution &dist,
                         const std::vector<std::size_t> &bits);

/** Pretty one-line rendering "00:0.50 11:0.50". */
std::string distributionToString(const Distribution &dist,
                                 std::size_t width);

} // namespace stats
} // namespace qra

#endif // QRA_STATS_HISTOGRAM_HH
