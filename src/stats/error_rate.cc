#include "stats/error_rate.hh"

#include <limits>
#include <sstream>

#include "common/strings.hh"

namespace qra {
namespace stats {

double
ErrorRateReport::reduction() const
{
    // An all-rejecting filter has no kept set to be cleaner than the
    // raw one; reporting 100% reduction there would be a lie.
    if (!hasFiltered || rawErrorRate <= 0.0)
        return 0.0;
    return 1.0 - filteredErrorRate / rawErrorRate;
}

std::string
ErrorRateReport::str() const
{
    std::ostringstream os;
    os << "raw " << formatPercent(rawErrorRate);
    if (!hasFiltered) {
        os << " -> filtered n/a (no shots passed the filter)";
        return os.str();
    }
    os << " -> filtered " << formatPercent(filteredErrorRate)
       << " (reduction " << formatPercent(reduction()) << ", kept "
       << formatPercent(keptFraction) << " of shots)";
    return os.str();
}

ErrorRateReport
computeErrorRates(const Distribution &dist,
                  const std::function<bool(std::uint64_t)> &is_error,
                  const std::function<bool(std::uint64_t)> &passed)
{
    double raw_error = 0.0;
    double total = 0.0;
    double kept = 0.0;
    double kept_error = 0.0;

    for (const auto &[key, p] : dist) {
        total += p;
        if (is_error(key))
            raw_error += p;
        if (passed(key)) {
            kept += p;
            if (is_error(key))
                kept_error += p;
        }
    }

    ErrorRateReport report;
    if (total > 0.0)
        report.rawErrorRate = raw_error / total;
    if (kept > 0.0) {
        report.filteredErrorRate = kept_error / kept;
    } else {
        // Nothing passed: P(error | passed) is undefined, and leaving
        // it at 0.0 would make reduction() claim a perfect filter.
        report.filteredErrorRate =
            std::numeric_limits<double>::quiet_NaN();
        report.hasFiltered = false;
    }
    report.keptFraction = total > 0.0 ? kept / total : 1.0;
    return report;
}

} // namespace stats
} // namespace qra
