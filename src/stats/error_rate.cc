#include "stats/error_rate.hh"

#include <sstream>

#include "common/strings.hh"

namespace qra {
namespace stats {

double
ErrorRateReport::reduction() const
{
    if (rawErrorRate <= 0.0)
        return 0.0;
    return 1.0 - filteredErrorRate / rawErrorRate;
}

std::string
ErrorRateReport::str() const
{
    std::ostringstream os;
    os << "raw " << formatPercent(rawErrorRate) << " -> filtered "
       << formatPercent(filteredErrorRate) << " (reduction "
       << formatPercent(reduction()) << ", kept "
       << formatPercent(keptFraction) << " of shots)";
    return os.str();
}

ErrorRateReport
computeErrorRates(const Distribution &dist,
                  const std::function<bool(std::uint64_t)> &is_error,
                  const std::function<bool(std::uint64_t)> &passed)
{
    double raw_error = 0.0;
    double total = 0.0;
    double kept = 0.0;
    double kept_error = 0.0;

    for (const auto &[key, p] : dist) {
        total += p;
        if (is_error(key))
            raw_error += p;
        if (passed(key)) {
            kept += p;
            if (is_error(key))
                kept_error += p;
        }
    }

    ErrorRateReport report;
    if (total > 0.0)
        report.rawErrorRate = raw_error / total;
    if (kept > 0.0)
        report.filteredErrorRate = kept_error / kept;
    report.keptFraction = total > 0.0 ? kept / total : 1.0;
    return report;
}

} // namespace stats
} // namespace qra
