#include "stats/distance.hh"

#include <cmath>
#include <set>

namespace qra {
namespace stats {

namespace {

std::set<std::uint64_t>
keyUnion(const Distribution &p, const Distribution &q)
{
    std::set<std::uint64_t> keys;
    for (const auto &[k, v] : p)
        keys.insert(k);
    for (const auto &[k, v] : q)
        keys.insert(k);
    return keys;
}

double
lookup(const Distribution &d, std::uint64_t key)
{
    const auto it = d.find(key);
    return it == d.end() ? 0.0 : it->second;
}

} // namespace

double
totalVariation(const Distribution &p, const Distribution &q)
{
    double sum = 0.0;
    for (std::uint64_t key : keyUnion(p, q))
        sum += std::abs(lookup(p, key) - lookup(q, key));
    return 0.5 * sum;
}

double
hellinger(const Distribution &p, const Distribution &q)
{
    double bc = 0.0; // Bhattacharyya coefficient
    for (std::uint64_t key : keyUnion(p, q))
        bc += std::sqrt(lookup(p, key) * lookup(q, key));
    return std::sqrt(std::max(0.0, 1.0 - bc));
}

double
wilsonHalfWidth(double p_hat, std::size_t n)
{
    if (n == 0)
        return 1.0;
    const double z = 1.959963984540054; // 97.5th normal percentile
    const double nd = static_cast<double>(n);
    return (z / (1.0 + z * z / nd)) *
           std::sqrt(p_hat * (1.0 - p_hat) / nd +
                     z * z / (4.0 * nd * nd));
}

} // namespace stats
} // namespace qra
