/**
 * @file
 * Chi-square goodness-of-fit test, the statistical engine behind the
 * statistical-assertion baseline (Huang & Martonosi, ISCA'19): after
 * measuring a breakpoint many times, the observed histogram is tested
 * against the distribution the programmer asserted.
 */

#ifndef QRA_STATS_CHI_SQUARE_HH
#define QRA_STATS_CHI_SQUARE_HH

#include "stats/histogram.hh"

namespace qra {
namespace stats {

/** Outcome of a goodness-of-fit test. */
struct ChiSquareResult
{
    double statistic = 0.0;
    std::size_t degreesOfFreedom = 0;
    /** P(chi2 >= statistic | H0). */
    double pValue = 1.0;

    /** Reject H0 at significance level @p alpha. */
    bool reject(double alpha = 0.05) const { return pValue < alpha; }
};

/**
 * Pearson chi-square test of @p observed counts against the expected
 * @p distribution (probabilities; missing keys mean probability 0).
 *
 * Categories with expected probability 0 but nonzero observations
 * force rejection (statistic = infinity). Expected counts below ~5
 * trigger the usual small-sample caveat but are still computed.
 */
ChiSquareResult chiSquareTest(const Counts &observed,
                              const Distribution &expected);

/**
 * Upper regularised incomplete gamma Q(a, x) = Gamma(a, x)/Gamma(a);
 * the chi-square survival function is Q(k/2, x/2). Exposed for tests.
 */
double regularizedGammaQ(double a, double x);

} // namespace stats
} // namespace qra

#endif // QRA_STATS_CHI_SQUARE_HH
