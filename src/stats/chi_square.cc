#include "stats/chi_square.hh"

#include <cmath>
#include <limits>
#include <set>

#include "common/error.hh"

namespace qra {
namespace stats {

namespace {

/** ln Gamma(x) via the Lanczos approximation (g=7, n=9). */
double
logGamma(double x)
{
    static const double coeffs[9] = {
        0.99999999999980993,  676.5203681218851,   -1259.1392167224028,
        771.32342877765313,   -176.61502916214059, 12.507343278686905,
        -0.13857109526572012, 9.9843695780195716e-6,
        1.5056327351493116e-7};

    if (x < 0.5) {
        // Reflection formula.
        return std::log(M_PI / std::sin(M_PI * x)) - logGamma(1.0 - x);
    }

    x -= 1.0;
    double acc = coeffs[0];
    for (int i = 1; i < 9; ++i)
        acc += coeffs[i] / (x + i);
    const double t = x + 7.5;
    return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t +
           std::log(acc);
}

/** Lower regularised incomplete gamma P(a, x) by series expansion. */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < 1000; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::abs(term) < std::abs(sum) * 1e-15)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - logGamma(a));
}

/** Upper regularised incomplete gamma by continued fraction. */
double
gammaQContinuedFraction(double a, double x)
{
    const double tiny = 1e-300;
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i < 1000; ++i) {
        const double an = -i * (i - a);
        b += 2.0;
        d = an * d + b;
        if (std::abs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::abs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::abs(delta - 1.0) < 1e-15)
            break;
    }
    return std::exp(-x + a * std::log(x) - logGamma(a)) * h;
}

} // namespace

double
regularizedGammaQ(double a, double x)
{
    if (a <= 0.0)
        QRA_FATAL("regularizedGammaQ requires a > 0");
    if (x < 0.0)
        QRA_FATAL("regularizedGammaQ requires x >= 0");
    if (x == 0.0)
        return 1.0;
    if (x < a + 1.0)
        return 1.0 - gammaPSeries(a, x);
    return gammaQContinuedFraction(a, x);
}

ChiSquareResult
chiSquareTest(const Counts &observed, const Distribution &expected)
{
    const std::size_t total = totalShots(observed);
    if (total == 0)
        QRA_FATAL("chi-square test on zero observations");

    // Category set: union of observed and expected supports.
    std::set<std::uint64_t> keys;
    for (const auto &[k, n] : observed)
        keys.insert(k);
    for (const auto &[k, p] : expected)
        if (p > 0.0)
            keys.insert(k);

    ChiSquareResult result;
    std::size_t categories = 0;
    for (std::uint64_t key : keys) {
        double p = 0.0;
        const auto it = expected.find(key);
        if (it != expected.end())
            p = it->second;

        const auto obs_it = observed.find(key);
        const double obs =
            obs_it == observed.end()
                ? 0.0
                : static_cast<double>(obs_it->second);

        if (p <= 0.0) {
            if (obs > 0.0) {
                // Impossible outcome observed: certain rejection.
                result.statistic =
                    std::numeric_limits<double>::infinity();
                result.pValue = 0.0;
            }
            continue;
        }
        ++categories;
        const double exp = p * static_cast<double>(total);
        const double diff = obs - exp;
        result.statistic += diff * diff / exp;
    }

    result.degreesOfFreedom = categories > 1 ? categories - 1 : 0;
    if (std::isinf(result.statistic)) {
        result.pValue = 0.0;
    } else if (result.degreesOfFreedom == 0) {
        result.pValue = 1.0;
    } else {
        result.pValue = regularizedGammaQ(
            static_cast<double>(result.degreesOfFreedom) / 2.0,
            result.statistic / 2.0);
    }
    return result;
}

} // namespace stats
} // namespace qra
