/**
 * @file
 * Error-rate accounting in the form the paper's Tables 1-2 report:
 * raw error rate over all shots, filtered error rate over shots that
 * passed the assertion, and the relative reduction.
 */

#ifndef QRA_STATS_ERROR_RATE_HH
#define QRA_STATS_ERROR_RATE_HH

#include <functional>
#include <string>

#include "stats/histogram.hh"

namespace qra {
namespace stats {

/** Raw vs assertion-filtered error rates. */
struct ErrorRateReport
{
    /** P(payload erroneous), all shots. */
    double rawErrorRate = 0.0;
    /**
     * P(payload erroneous | assertion passed). NaN when the filter
     * kept nothing — the conditional is undefined, not zero; check
     * hasFiltered before reading it.
     */
    double filteredErrorRate = 0.0;
    /** False when no shot passed the filter (filtered rate undefined). */
    bool hasFiltered = true;
    /** Fraction of shots the filter kept. */
    double keptFraction = 1.0;
    /**
     * Relative reduction: 1 - filtered/raw. 0 when raw is 0 or when
     * the filter kept nothing (rejecting everything removes no
     * errors from the kept set — there is no kept set).
     */
    double reduction() const;

    /** Percentages, e.g. "raw 3.5% -> filtered 2.5% (-28.5%)". */
    std::string str() const;
};

/**
 * Compute the report from a joint distribution over (payload,
 * assertion) outcomes.
 *
 * @param dist Distribution over register values.
 * @param is_error Predicate over register values: payload wrong?
 * @param passed Predicate over register values: assertion passed?
 */
ErrorRateReport
computeErrorRates(const Distribution &dist,
                  const std::function<bool(std::uint64_t)> &is_error,
                  const std::function<bool(std::uint64_t)> &passed);

} // namespace stats
} // namespace qra

#endif // QRA_STATS_ERROR_RATE_HH
