/**
 * @file
 * Peephole optimiser: cancels adjacent inverse pairs (H H, CX CX,
 * S Sdg, T Tdg, X X, ...) and merges rotation gates on the same
 * qubit. Relevant to assertion circuits, whose parity checks insert
 * CNOT pairs that can partially cancel against user gates when the
 * assertion is removed.
 */

#ifndef QRA_TRANSPILE_OPTIMIZER_HH
#define QRA_TRANSPILE_OPTIMIZER_HH

#include "circuit/circuit.hh"

namespace qra {

/** Statistics returned by optimizeCircuit. */
struct OptimizeResult
{
    Circuit circuit;
    /** Gates removed by inverse-pair cancellation. */
    std::size_t cancelledGates = 0;
    /** Rotation gates merged into a single rotation. */
    std::size_t mergedRotations = 0;
};

/**
 * Run cancellation/merging to a fixed point.
 *
 * Barriers fence the optimiser: nothing cancels across a barrier, so
 * assertion blocks wrapped in barriers are never optimised away.
 */
OptimizeResult optimizeCircuit(const Circuit &circuit);

} // namespace qra

#endif // QRA_TRANSPILE_OPTIMIZER_HH
