#include "transpile/optimizer.hh"

#include <cmath>
#include <optional>

#include "common/error.hh"

namespace qra {

namespace {

/** True when two ops are exact inverse pairs eligible to cancel. */
bool
cancels(const Operation &a, const Operation &b)
{
    if (a.qubits != b.qubits)
        return false;
    if (!opIsUnitary(a.kind) || !opIsUnitary(b.kind))
        return false;

    const auto inv = opSelfContainedInverse(a.kind);
    return inv && *inv == b.kind && a.params.empty() && b.params.empty();
}

/** Rotation kinds that merge by summing angles. */
bool
mergeable(OpKind kind)
{
    return kind == OpKind::RX || kind == OpKind::RY ||
           kind == OpKind::RZ || kind == OpKind::P;
}

/** Angle congruent to zero (mod 4*pi for rotations, 2*pi for P). */
bool
isNullAngle(OpKind kind, double theta)
{
    const double period = kind == OpKind::P ? 2.0 * M_PI : 4.0 * M_PI;
    const double r = std::fmod(std::abs(theta), period);
    return r < 1e-12 || period - r < 1e-12;
}

} // namespace

OptimizeResult
optimizeCircuit(const Circuit &circuit)
{
    std::vector<Operation> ops(circuit.ops());
    std::size_t cancelled = 0;
    std::size_t merged = 0;

    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<Operation> next;
        next.reserve(ops.size());

        for (const Operation &op : ops) {
            if (!next.empty()) {
                Operation &prev = next.back();

                // Only compare against the previous op when no
                // intervening op shares a qubit; with a simple stack
                // we approximate by requiring *adjacency on the same
                // operand set*, which is safe (sound, not complete).
                if (cancels(prev, op)) {
                    next.pop_back();
                    cancelled += 2;
                    changed = true;
                    continue;
                }
                if (op.kind == prev.kind && mergeable(op.kind) &&
                    op.qubits == prev.qubits) {
                    prev.params[0] += op.params[0];
                    ++merged;
                    changed = true;
                    if (isNullAngle(prev.kind, prev.params[0])) {
                        next.pop_back();
                        cancelled += 1;
                    }
                    continue;
                }

                // Barriers and any op sharing qubits block further
                // peepholes; nothing to do — the adjacency check
                // above already encodes this.
            }
            next.push_back(op);
        }
        ops = std::move(next);
    }

    Circuit out(circuit.numQubits(), circuit.numClbits(),
                circuit.name() + "_opt");
    for (Operation &op : ops)
        out.append(std::move(op));

    return OptimizeResult{std::move(out), cancelled, merged};
}

} // namespace qra
