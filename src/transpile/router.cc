#include "transpile/router.hh"

#include "common/error.hh"

namespace qra {

RoutedCircuit
routeCircuit(const Circuit &circuit, const CouplingMap &map,
             const Layout &initial)
{
    if (circuit.numQubits() > map.numQubits())
        throw TranspileError("circuit does not fit on the device");
    if (!map.isConnected())
        throw TranspileError("coupling map is not connected");

    Circuit routed(map.numQubits(), circuit.numClbits(),
                   circuit.name() + "_routed");
    Layout layout = initial;
    std::size_t swaps = 0;

    for (const Operation &op : circuit.ops()) {
        if (op.kind == OpKind::CCX)
            throw TranspileError("decompose CCX before routing");

        Operation mapped = op;

        if (op.qubits.size() == 2 && opIsUnitary(op.kind)) {
            Qubit pa = layout.physical(op.qubits[0]);
            Qubit pb = layout.physical(op.qubits[1]);

            if (!map.connected(pa, pb)) {
                const std::vector<Qubit> path = map.shortestPath(pa, pb);
                QRA_ASSERT(path.size() >= 3,
                           "shortest path too short for disconnected "
                           "pair");
                // Walk the first operand toward the second, stopping
                // one hop away.
                for (std::size_t i = 0; i + 2 < path.size(); ++i) {
                    routed.swap(path[i], path[i + 1]);
                    layout.swapPhysical(path[i], path[i + 1]);
                    ++swaps;
                }
                pa = layout.physical(op.qubits[0]);
                pb = layout.physical(op.qubits[1]);
                QRA_ASSERT(map.connected(pa, pb),
                           "routing failed to connect operands");
            }
            mapped.qubits = {pa, pb};
        } else {
            for (auto &q : mapped.qubits)
                q = layout.physical(q);
        }

        routed.append(std::move(mapped));
    }

    return RoutedCircuit{std::move(routed), std::move(layout), swaps};
}

} // namespace qra
