#include "transpile/layout.hh"

#include <algorithm>
#include <map>

#include "common/error.hh"

namespace qra {

Layout::Layout(std::size_t num_qubits)
{
    v2p_.resize(num_qubits);
    for (Qubit q = 0; q < num_qubits; ++q)
        v2p_[q] = q;
    rebuildInverse();
}

Layout::Layout(std::vector<Qubit> virtual_to_physical)
    : v2p_(std::move(virtual_to_physical))
{
    // Validate bijectivity.
    std::vector<bool> seen(v2p_.size(), false);
    for (Qubit p : v2p_) {
        if (p >= v2p_.size() || seen[p])
            throw TranspileError("layout is not a bijection");
        seen[p] = true;
    }
    rebuildInverse();
}

void
Layout::rebuildInverse()
{
    p2v_.assign(v2p_.size(), 0);
    for (Qubit v = 0; v < v2p_.size(); ++v)
        p2v_[v2p_[v]] = v;
}

Qubit
Layout::physical(Qubit v) const
{
    if (v >= v2p_.size())
        throw TranspileError("virtual qubit out of range");
    return v2p_[v];
}

Qubit
Layout::virtualOf(Qubit p) const
{
    if (p >= p2v_.size())
        throw TranspileError("physical qubit out of range");
    return p2v_[p];
}

void
Layout::swapPhysical(Qubit p0, Qubit p1)
{
    const Qubit v0 = virtualOf(p0);
    const Qubit v1 = virtualOf(p1);
    std::swap(v2p_[v0], v2p_[v1]);
    std::swap(p2v_[p0], p2v_[p1]);
}

Layout
trivialLayout(const Circuit &circuit, const CouplingMap &map)
{
    if (circuit.numQubits() > map.numQubits())
        throw TranspileError("circuit does not fit on the device");
    return Layout(map.numQubits());
}

Layout
greedyLayout(const Circuit &circuit, const CouplingMap &map)
{
    if (circuit.numQubits() > map.numQubits())
        throw TranspileError("circuit does not fit on the device");

    const std::size_t n = map.numQubits();

    // Interaction weights between virtual qubit pairs.
    std::map<std::pair<Qubit, Qubit>, std::size_t> weight;
    for (const Operation &op : circuit.ops()) {
        if (op.qubits.size() < 2 || !opIsUnitary(op.kind))
            continue;
        for (std::size_t i = 0; i < op.qubits.size(); ++i) {
            for (std::size_t j = i + 1; j < op.qubits.size(); ++j) {
                const Qubit a = std::min(op.qubits[i], op.qubits[j]);
                const Qubit b = std::max(op.qubits[i], op.qubits[j]);
                ++weight[{a, b}];
            }
        }
    }

    // Pairs sorted by descending interaction count.
    std::vector<std::pair<std::size_t, std::pair<Qubit, Qubit>>> ranked;
    ranked.reserve(weight.size());
    for (const auto &[pair, w] : weight)
        ranked.push_back({w, pair});
    std::sort(ranked.begin(), ranked.end(),
              [](const auto &a, const auto &b) { return a.first > b.first; });

    constexpr Qubit unassigned = static_cast<Qubit>(-1);
    std::vector<Qubit> v2p(n, unassigned);
    std::vector<bool> used(n, false);

    auto assign = [&](Qubit v, Qubit p) {
        v2p[v] = p;
        used[p] = true;
    };

    // Place the heaviest pair on the physical edge whose endpoints
    // have the highest degree (most routing freedom later).
    for (const auto &[w, pair] : ranked) {
        const auto [va, vb] = pair;
        const bool a_placed = v2p[va] != unassigned;
        const bool b_placed = v2p[vb] != unassigned;

        if (a_placed && b_placed)
            continue;

        if (!a_placed && !b_placed) {
            std::size_t best_score = 0;
            int best_edge = -1;
            for (std::size_t e = 0; e < map.edges().size(); ++e) {
                const auto [pc, pt] = map.edges()[e];
                if (used[pc] || used[pt])
                    continue;
                const std::size_t score = map.neighbors(pc).size() +
                                          map.neighbors(pt).size();
                if (score >= best_score) {
                    best_score = score;
                    best_edge = static_cast<int>(e);
                }
            }
            if (best_edge >= 0) {
                const auto [pc, pt] =
                    map.edges()[static_cast<std::size_t>(best_edge)];
                assign(va, pc);
                assign(vb, pt);
            }
            continue;
        }

        // One endpoint placed: put the other on a free neighbour.
        const Qubit placed_v = a_placed ? va : vb;
        const Qubit free_v = a_placed ? vb : va;
        for (Qubit nb : map.neighbors(v2p[placed_v])) {
            if (!used[nb]) {
                assign(free_v, nb);
                break;
            }
        }
    }

    // Any leftover virtual qubits take the remaining physical slots.
    for (Qubit v = 0; v < n; ++v) {
        if (v2p[v] != unassigned)
            continue;
        for (Qubit p = 0; p < n; ++p) {
            if (!used[p]) {
                assign(v, p);
                break;
            }
        }
    }

    return Layout(std::move(v2p));
}

} // namespace qra
