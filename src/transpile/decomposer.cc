#include "transpile/decomposer.hh"

namespace qra {

namespace {

void
emitSwap(Circuit &out, Qubit a, Qubit b)
{
    out.cx(a, b);
    out.cx(b, a);
    out.cx(a, b);
}

void
emitCcx(Circuit &out, Qubit c0, Qubit c1, Qubit target)
{
    // Standard Toffoli over {H, T, Tdg, CX} (six CNOTs).
    out.h(target);
    out.cx(c1, target);
    out.tdg(target);
    out.cx(c0, target);
    out.t(target);
    out.cx(c1, target);
    out.tdg(target);
    out.cx(c0, target);
    out.t(c1);
    out.t(target);
    out.h(target);
    out.cx(c0, c1);
    out.t(c0);
    out.tdg(c1);
    out.cx(c0, c1);
}

} // namespace

Circuit
decompose(const Circuit &circuit, const DecomposeOptions &options)
{
    Circuit out(circuit.numQubits(), circuit.numClbits(),
                circuit.name() + "_decomposed");

    for (const Operation &op : circuit.ops()) {
        switch (op.kind) {
          case OpKind::Swap:
            if (options.decomposeSwap) {
                emitSwap(out, op.qubits[0], op.qubits[1]);
                continue;
            }
            break;
          case OpKind::CCX:
            if (options.decomposeCcx) {
                emitCcx(out, op.qubits[0], op.qubits[1], op.qubits[2]);
                continue;
            }
            break;
          case OpKind::CZ:
            if (options.decomposeControlledPaulis) {
                out.h(op.qubits[1]);
                out.cx(op.qubits[0], op.qubits[1]);
                out.h(op.qubits[1]);
                continue;
            }
            break;
          case OpKind::CY:
            if (options.decomposeControlledPaulis) {
                out.sdg(op.qubits[1]);
                out.cx(op.qubits[0], op.qubits[1]);
                out.s(op.qubits[1]);
                continue;
            }
            break;
          default:
            break;
        }
        out.append(op);
    }
    return out;
}

} // namespace qra
