/**
 * @file
 * Directed qubit connectivity graph of a device. An edge (c, t) means
 * a native CNOT with control c and target t is available. ibmqx4-era
 * devices have *directed* edges: the reverse CNOT costs four extra
 * Hadamards (see DirectionFixer).
 */

#ifndef QRA_TRANSPILE_COUPLING_MAP_HH
#define QRA_TRANSPILE_COUPLING_MAP_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "math/types.hh"

namespace qra {

/** Directed connectivity graph over physical qubits. */
class CouplingMap
{
  public:
    /** @param num_qubits Number of physical qubits on the device. */
    explicit CouplingMap(std::size_t num_qubits);

    /** Add a directed edge: native CNOT control -> target. */
    void addEdge(Qubit control, Qubit target);

    std::size_t numQubits() const { return numQubits_; }

    const std::vector<std::pair<Qubit, Qubit>> &edges() const
    {
        return edges_;
    }

    /** True if a native CNOT control->target exists. */
    bool hasEdge(Qubit control, Qubit target) const;

    /** True if the pair is connected in either direction. */
    bool connected(Qubit a, Qubit b) const;

    /** Neighbours of @p q (union of both edge directions). */
    std::vector<Qubit> neighbors(Qubit q) const;

    /**
     * Length of the shortest undirected path between two qubits
     * (number of edges); SIZE_MAX if disconnected.
     */
    std::size_t distance(Qubit a, Qubit b) const;

    /**
     * Shortest undirected path from @p a to @p b, inclusive of both
     * endpoints. Empty if disconnected.
     */
    std::vector<Qubit> shortestPath(Qubit a, Qubit b) const;

    /** True when every qubit can reach every other qubit. */
    bool isConnected() const;

    /** "0->1, 1->2, ..." edge list rendering. */
    std::string str() const;

  private:
    void checkQubit(Qubit q) const;

    std::size_t numQubits_;
    std::vector<std::pair<Qubit, Qubit>> edges_;
    std::vector<std::vector<Qubit>> adjacency_; ///< undirected
};

} // namespace qra

#endif // QRA_TRANSPILE_COUPLING_MAP_HH
