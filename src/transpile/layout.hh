/**
 * @file
 * Layout: the virtual-to-physical qubit assignment, plus layout
 * selection strategies (trivial and interaction-greedy).
 */

#ifndef QRA_TRANSPILE_LAYOUT_HH
#define QRA_TRANSPILE_LAYOUT_HH

#include <vector>

#include "circuit/circuit.hh"
#include "transpile/coupling_map.hh"

namespace qra {

/** Bijection between virtual (circuit) and physical (device) qubits. */
class Layout
{
  public:
    /** Identity layout over @p num_qubits qubits. */
    explicit Layout(std::size_t num_qubits);

    /** Construct from an explicit virtual->physical table. */
    explicit Layout(std::vector<Qubit> virtual_to_physical);

    std::size_t numQubits() const { return v2p_.size(); }

    /** Physical qubit hosting virtual qubit @p v. */
    Qubit physical(Qubit v) const;

    /** Virtual qubit hosted on physical qubit @p p. */
    Qubit virtualOf(Qubit p) const;

    /** Swap the virtual occupants of two physical qubits. */
    void swapPhysical(Qubit p0, Qubit p1);

    const std::vector<Qubit> &virtualToPhysical() const { return v2p_; }

  private:
    void rebuildInverse();

    std::vector<Qubit> v2p_;
    std::vector<Qubit> p2v_;
};

/** Identity assignment: virtual i -> physical i. */
Layout trivialLayout(const Circuit &circuit, const CouplingMap &map);

/**
 * Greedy interaction-graph layout: virtual qubit pairs that interact
 * most are placed on adjacent physical qubits, reducing the SWAPs the
 * router must insert. This reproduces the manual choice the paper
 * describes (picking q2 as the ancilla "due to the constraints on
 * connectivity of the IBM Q computer").
 */
Layout greedyLayout(const Circuit &circuit, const CouplingMap &map);

} // namespace qra

#endif // QRA_TRANSPILE_LAYOUT_HH
