/**
 * @file
 * CNOT direction fixing for devices with directed couplings.
 *
 * ibmqx4-class devices implement CNOT in one direction per coupled
 * pair. A reversed CNOT is synthesised with four Hadamards:
 *   CX(a, b) = (H a)(H b) CX(b, a) (H a)(H b).
 * This is the concrete cost behind the paper's remark that qubit
 * choice was dictated by device connectivity.
 */

#ifndef QRA_TRANSPILE_DIRECTION_FIXER_HH
#define QRA_TRANSPILE_DIRECTION_FIXER_HH

#include "circuit/circuit.hh"
#include "transpile/coupling_map.hh"

namespace qra {

/** Statistics returned by fixDirections. */
struct DirectionFixResult
{
    Circuit circuit;
    /** CNOTs that had to be reversed via H conjugation. */
    std::size_t reversedCx = 0;
};

/**
 * Rewrite every CX whose orientation is not native into the
 * H-conjugated reverse CX. CZ and Swap are symmetric and pass
 * through; any other 2-qubit gate on a wrong-direction edge is an
 * error (decompose first).
 *
 * @pre Every 2-qubit gate acts on a coupled pair (route first).
 */
DirectionFixResult fixDirections(const Circuit &circuit,
                                 const CouplingMap &map);

} // namespace qra

#endif // QRA_TRANSPILE_DIRECTION_FIXER_HH
