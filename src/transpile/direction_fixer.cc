#include "transpile/direction_fixer.hh"

#include "common/error.hh"

namespace qra {

DirectionFixResult
fixDirections(const Circuit &circuit, const CouplingMap &map)
{
    Circuit fixed(circuit.numQubits(), circuit.numClbits(),
                  circuit.name() + "_directed");
    std::size_t reversed = 0;

    for (const Operation &op : circuit.ops()) {
        if (op.qubits.size() != 2 || !opIsUnitary(op.kind)) {
            fixed.append(op);
            continue;
        }

        const Qubit a = op.qubits[0];
        const Qubit b = op.qubits[1];
        if (!map.connected(a, b))
            throw TranspileError(
                "gate on uncoupled pair (" + std::to_string(a) + ", " +
                std::to_string(b) + "); run the router first");

        switch (op.kind) {
          case OpKind::CZ:
          case OpKind::Swap:
            // Symmetric gates: any orientation is fine.
            fixed.append(op);
            continue;
          case OpKind::CX:
            if (map.hasEdge(a, b)) {
                fixed.append(op);
            } else {
                // Native direction is b->a: conjugate with Hadamards.
                fixed.h(a).h(b);
                fixed.cx(b, a);
                fixed.h(a).h(b);
                ++reversed;
            }
            continue;
          default:
            throw TranspileError(
                std::string("cannot direction-fix gate '") +
                opName(op.kind) + "'; decompose it to CX first");
        }
    }

    return DirectionFixResult{std::move(fixed), reversed};
}

} // namespace qra
