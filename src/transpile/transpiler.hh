/**
 * @file
 * Transpiler pipeline: decompose -> layout -> route -> direction-fix
 * -> optimise. Produces a circuit executable on a target DeviceModel
 * (every 2-qubit gate on a native directed edge).
 *
 * transpile() is a thin wrapper over the canonical
 * compile::transpilePipeline(); compose custom stage orders (e.g.
 * post-layout assertion injection) through compile::PassManager.
 */

#ifndef QRA_TRANSPILE_TRANSPILER_HH
#define QRA_TRANSPILE_TRANSPILER_HH

#include <string>

#include "circuit/circuit.hh"
#include "transpile/coupling_map.hh"
#include "transpile/layout.hh"

namespace qra {

/** Knobs of the transpilation pipeline. */
struct TranspileOptions
{
    /** Use the interaction-greedy layout instead of the identity. */
    bool useGreedyLayout = true;
    /** Run the peephole optimiser after direction fixing. */
    bool optimize = true;
};

/** Pipeline output with per-pass statistics. */
struct TranspileResult
{
    Circuit circuit{1};
    Layout initialLayout{1};
    Layout finalLayout{1};
    std::size_t insertedSwaps = 0;
    std::size_t reversedCx = 0;
    std::size_t cancelledGates = 0;

    /** One-line summary for logs and benches. */
    std::string str() const;
};

/**
 * Compile @p circuit for a device with connectivity @p map.
 *
 * The result's circuit is expressed over physical qubits; measurement
 * clbits are unchanged, so downstream Result analysis is oblivious to
 * the mapping.
 */
TranspileResult transpile(const Circuit &circuit, const CouplingMap &map,
                          const TranspileOptions &options = {});

} // namespace qra

#endif // QRA_TRANSPILE_TRANSPILER_HH
