/**
 * @file
 * Gate decomposition to the {1q, CX} basis: SWAP -> 3 CX,
 * CY/CZ -> CX with 1q conjugation, CCX -> the standard 6-CX
 * realisation over H/T/Tdg.
 */

#ifndef QRA_TRANSPILE_DECOMPOSER_HH
#define QRA_TRANSPILE_DECOMPOSER_HH

#include "circuit/circuit.hh"

namespace qra {

/** Options controlling which gates are decomposed. */
struct DecomposeOptions
{
    bool decomposeSwap = true;
    bool decomposeCcx = true;
    /** Rewrite CY/CZ into CX with single-qubit conjugation. */
    bool decomposeControlledPaulis = false;
};

/** Rewrite @p circuit per @p options; other gates pass through. */
Circuit decompose(const Circuit &circuit,
                  const DecomposeOptions &options = {});

} // namespace qra

#endif // QRA_TRANSPILE_DECOMPOSER_HH
