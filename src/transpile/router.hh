/**
 * @file
 * SWAP router: makes every multi-qubit gate act on physically
 * adjacent qubits by inserting SWAP chains along shortest paths.
 */

#ifndef QRA_TRANSPILE_ROUTER_HH
#define QRA_TRANSPILE_ROUTER_HH

#include "circuit/circuit.hh"
#include "transpile/coupling_map.hh"
#include "transpile/layout.hh"

namespace qra {

/** Result of routing: the physical circuit plus the final layout. */
struct RoutedCircuit
{
    Circuit circuit;
    /** Layout after all inserted SWAPs (virtual -> physical). */
    Layout finalLayout;
    /** Number of SWAP gates inserted. */
    std::size_t insertedSwaps = 0;
};

/**
 * Route @p circuit onto @p map starting from @p initial layout.
 *
 * The output circuit is expressed over *physical* qubits; classical
 * bits are unchanged. Two-qubit gates in the output act only on
 * coupled pairs (in either direction; DirectionFixer resolves
 * orientation). CCX must be decomposed before routing.
 */
RoutedCircuit routeCircuit(const Circuit &circuit, const CouplingMap &map,
                           const Layout &initial);

} // namespace qra

#endif // QRA_TRANSPILE_ROUTER_HH
