#include "transpile/transpiler.hh"

#include <sstream>

#include "transpile/decomposer.hh"
#include "transpile/direction_fixer.hh"
#include "transpile/optimizer.hh"
#include "transpile/router.hh"

namespace qra {

std::string
TranspileResult::str() const
{
    std::ostringstream os;
    os << "transpiled: " << circuit.size() << " ops, depth "
       << circuit.depth() << ", swaps " << insertedSwaps
       << ", reversed CX " << reversedCx << ", cancelled "
       << cancelledGates;
    return os.str();
}

TranspileResult
transpile(const Circuit &circuit, const CouplingMap &map,
          const TranspileOptions &options)
{
    // 1. Decompose SWAP/CCX into the CX basis so routing and
    //    direction fixing only ever see CX/CZ two-qubit gates.
    DecomposeOptions dopts;
    dopts.decomposeSwap = false; // router inserts swaps; keep user's
    dopts.decomposeCcx = true;
    Circuit lowered = decompose(circuit, dopts);

    // 2. Choose the initial placement.
    const Layout initial = options.useGreedyLayout
                               ? greedyLayout(lowered, map)
                               : trivialLayout(lowered, map);

    // 3. Route: insert SWAPs until every 2-qubit gate is coupled.
    RoutedCircuit routed = routeCircuit(lowered, map, initial);

    // 4. Lower the inserted SWAPs to CX triplets.
    DecomposeOptions swap_opts;
    swap_opts.decomposeSwap = true;
    swap_opts.decomposeCcx = false;
    Circuit swap_free = decompose(routed.circuit, swap_opts);

    // 5. Fix CNOT orientation against the directed coupling map.
    DirectionFixResult directed = fixDirections(swap_free, map);

    // 6. Peephole cleanup.
    TranspileResult result;
    if (options.optimize) {
        OptimizeResult opt = optimizeCircuit(directed.circuit);
        result.circuit = std::move(opt.circuit);
        result.cancelledGates = opt.cancelledGates;
    } else {
        result.circuit = std::move(directed.circuit);
    }

    result.circuit.setName(circuit.name() + "@" +
                           std::to_string(map.numQubits()) + "q");
    result.initialLayout = initial;
    result.finalLayout = routed.finalLayout;
    result.insertedSwaps = routed.insertedSwaps;
    result.reversedCx = directed.reversedCx;
    return result;
}

} // namespace qra
