#include "transpile/transpiler.hh"

#include <sstream>

#include "compile/pipelines.hh"

namespace qra {

std::string
TranspileResult::str() const
{
    std::ostringstream os;
    os << "transpiled: " << circuit.size() << " ops, depth "
       << circuit.depth() << ", swaps " << insertedSwaps
       << ", reversed CX " << reversedCx << ", cancelled "
       << cancelledGates;
    return os.str();
}

TranspileResult
transpile(const Circuit &circuit, const CouplingMap &map,
          const TranspileOptions &options)
{
    compile::CompileContext ctx =
        compile::transpilePipeline(options).run(circuit, &map);

    TranspileResult result;
    result.circuit = std::move(ctx.circuit);
    result.circuit.setName(circuit.name() + "@" +
                           std::to_string(map.numQubits()) + "q");
    result.initialLayout = std::move(*ctx.initialLayout);
    result.finalLayout = std::move(*ctx.finalLayout);
    result.insertedSwaps = ctx.insertedSwaps;
    result.reversedCx = ctx.reversedCx;
    result.cancelledGates = ctx.cancelledGates;
    return result;
}

} // namespace qra
