#include "transpile/coupling_map.hh"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>

#include "common/error.hh"

namespace qra {

CouplingMap::CouplingMap(std::size_t num_qubits)
    : numQubits_(num_qubits), adjacency_(num_qubits)
{
    if (num_qubits == 0)
        throw TranspileError("coupling map needs at least one qubit");
}

void
CouplingMap::checkQubit(Qubit q) const
{
    if (q >= numQubits_)
        throw TranspileError("physical qubit " + std::to_string(q) +
                             " out of range");
}

void
CouplingMap::addEdge(Qubit control, Qubit target)
{
    checkQubit(control);
    checkQubit(target);
    if (control == target)
        throw TranspileError("self-loop edge");
    if (hasEdge(control, target))
        return;
    edges_.emplace_back(control, target);
    auto &ac = adjacency_[control];
    auto &at = adjacency_[target];
    if (std::find(ac.begin(), ac.end(), target) == ac.end())
        ac.push_back(target);
    if (std::find(at.begin(), at.end(), control) == at.end())
        at.push_back(control);
}

bool
CouplingMap::hasEdge(Qubit control, Qubit target) const
{
    return std::find(edges_.begin(), edges_.end(),
                     std::make_pair(control, target)) != edges_.end();
}

bool
CouplingMap::connected(Qubit a, Qubit b) const
{
    return hasEdge(a, b) || hasEdge(b, a);
}

std::vector<Qubit>
CouplingMap::neighbors(Qubit q) const
{
    checkQubit(q);
    return adjacency_[q];
}

std::size_t
CouplingMap::distance(Qubit a, Qubit b) const
{
    const std::vector<Qubit> path = shortestPath(a, b);
    if (path.empty())
        return std::numeric_limits<std::size_t>::max();
    return path.size() - 1;
}

std::vector<Qubit>
CouplingMap::shortestPath(Qubit a, Qubit b) const
{
    checkQubit(a);
    checkQubit(b);
    if (a == b)
        return {a};

    std::vector<Qubit> parent(numQubits_,
                              std::numeric_limits<Qubit>::max());
    std::queue<Qubit> frontier;
    frontier.push(a);
    parent[a] = a;

    while (!frontier.empty()) {
        const Qubit cur = frontier.front();
        frontier.pop();
        for (Qubit next : adjacency_[cur]) {
            if (parent[next] != std::numeric_limits<Qubit>::max())
                continue;
            parent[next] = cur;
            if (next == b) {
                std::vector<Qubit> path{b};
                Qubit walk = b;
                while (walk != a) {
                    walk = parent[walk];
                    path.push_back(walk);
                }
                std::reverse(path.begin(), path.end());
                return path;
            }
            frontier.push(next);
        }
    }
    return {};
}

bool
CouplingMap::isConnected() const
{
    for (Qubit q = 1; q < numQubits_; ++q)
        if (shortestPath(0, q).empty())
            return false;
    return true;
}

std::string
CouplingMap::str() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < edges_.size(); ++i) {
        if (i)
            os << ", ";
        os << edges_[i].first << "->" << edges_[i].second;
    }
    return os.str();
}

} // namespace qra
